// Recoverable lock tier unit tests: crash-restart process semantics and
// cache eviction, recoverable mutex stage transitions, RME checker teeth
// (a deliberately broken scenario MUST trip it), bounded-recovery
// measurement, and --jobs bit-identity of the recoverable sweep cells.
// The exhaustive schedule-space arguments live in test_recover_explore.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "harness/parallel.hpp"
#include "recover/driver.hpp"
#include "recover/recover_experiment.hpp"
#include "recover/recoverable_mutex.hpp"
#include "recover/recoverable_rwlock.hpp"
#include "recover/rme_checker.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace rwr {
namespace {

using recover::RecoverableTournamentMutex;
using recover::RecoverExperimentConfig;
using recover::RecoverExperimentResult;
using recover::RecoverLockKind;
using recover::RecoveryOutcome;
using recover::RmeChecker;
using sim::FaultInjector;
using sim::FaultPlan;
using sim::Process;
using sim::Role;
using sim::System;

constexpr int kRecoverIdx = static_cast<int>(Section::Recover);

// ---- Crash-restart process semantics ---------------------------------------

sim::SimTask<void> two_writes(Process& p, VarId a, VarId b) {
    p.set_section(Section::Entry);
    co_await p.write(a, 1);
    co_await p.write(b, 2);
    p.set_section(Section::Remainder);
}

sim::SimTask<void> copy_var(Process& p, VarId from, VarId to) {
    const Word seen = co_await p.read(from);
    co_await p.write(to, seen);
    p.set_section(Section::Remainder);
}

TEST(CrashRestart, WipesPrivateStateButKeepsSharedMemory) {
    System sys(Protocol::WriteBack);
    const VarId a = sys.memory().allocate("a");
    const VarId b = sys.memory().allocate("b");
    const VarId c = sys.memory().allocate("c");
    Process& p = sys.add_process(Role::Writer);
    p.set_task(two_writes(p, a, b));
    int factory_calls = 0;
    p.set_restart_factory([&factory_calls, a, c](Process& q) {
        ++factory_calls;
        // Recovery sees the pre-crash write: copy a into c to prove it.
        return copy_var(q, a, c);
    });
    ASSERT_TRUE(p.restartable());

    // The fault fires after the first Entry step: the a-write's effect is
    // durable, but the coroutine dies without resuming, so b is never
    // written -- the continuation was private state and the crash wiped it.
    FaultInjector injector(
        sys, FaultPlan{}.crash_restart(/*victim=*/0, Section::Entry, 1));
    sys.add_observer(&injector);

    sim::RoundRobinScheduler sched;
    const auto rr = sim::run(sys, sched, /*max_steps=*/100);
    sys.check_failures();

    EXPECT_TRUE(rr.all_finished);
    EXPECT_EQ(injector.num_fired(), 1u);
    EXPECT_EQ(factory_calls, 1);
    EXPECT_EQ(p.restarts(), 1u);
    EXPECT_EQ(p.crashed_in(), Section::Entry);
    EXPECT_EQ(sys.memory().peek(a), 1u);  // Durable.
    EXPECT_EQ(sys.memory().peek(b), 0u);  // Lost with the coroutine.
    EXPECT_EQ(sys.memory().peek(c), 1u);  // Recovery read the durable value.
}

TEST(CrashRestart, WithoutAFactoryIsAnError) {
    System sys(Protocol::WriteBack);
    const VarId a = sys.memory().allocate("a");
    const VarId b = sys.memory().allocate("b");
    Process& p = sys.add_process(Role::Writer);
    p.set_task(two_writes(p, a, b));
    EXPECT_FALSE(p.restartable());
    EXPECT_THROW(p.crash_restart(), std::logic_error);
}

TEST(CrashRestart, EvictAllDropsEveryCachedCopy) {
    Memory mem(Protocol::WriteBack);
    const VarId shared = mem.allocate("shared");
    const VarId excl = mem.allocate("excl");
    // p0 reads one variable (shared copy) and writes another (exclusive).
    EXPECT_TRUE(mem.apply(0, Op::read(shared)).rmr);
    EXPECT_FALSE(mem.apply(0, Op::read(shared)).rmr);  // Cache hit.
    mem.apply(0, Op::write(excl, 7));
    ASSERT_TRUE(mem.cached(0, shared));
    ASSERT_TRUE(mem.cached_exclusive(0, excl));

    mem.evict_all(0);

    // Both copies are gone -- the restarted process re-fetches everything --
    // but the *values* survive: eviction models a cold cache, not data loss.
    EXPECT_FALSE(mem.cached(0, shared));
    EXPECT_FALSE(mem.cached(0, excl));
    EXPECT_TRUE(mem.apply(0, Op::read(shared)).rmr);
    EXPECT_EQ(mem.peek(excl), 7u);
}

// ---- Recoverable mutex stage transitions -----------------------------------
// stage_of() peeks shared memory without taking a simulated step, so a probe
// coroutine can observe its own stage word at section boundaries.

struct MutexRig {
    System sys{Protocol::WriteBack};
    std::unique_ptr<RecoverableTournamentMutex> mx;
    explicit MutexRig(std::uint32_t m) {
        mx = std::make_unique<RecoverableTournamentMutex>(sys.memory(), "mx",
                                                          m);
        sys.add_process(Role::Writer);
    }
};

sim::SimTask<void> stage_probe(RecoverableTournamentMutex& mx, System& sys,
                               Process& p, std::vector<Word>& observed) {
    observed.push_back(mx.stage_of(sys.memory(), 0));  // Before entry.
    co_await mx.enter(p, 0);
    observed.push_back(mx.stage_of(sys.memory(), 0));  // Inside the CS.
    co_await mx.exit_slot(p, 0);
    observed.push_back(mx.stage_of(sys.memory(), 0));  // Back to idle.
}

TEST(RecoverableMutex, StageWordTracksThePassagePhases) {
    MutexRig rig(/*m=*/2);
    Process& p = rig.sys.process(0);
    std::vector<Word> observed;
    p.set_task(stage_probe(*rig.mx, rig.sys, p, observed));
    sim::run_solo(rig.sys, 0, /*max_steps=*/1000);
    ASSERT_TRUE(p.finished());
    ASSERT_EQ(observed.size(), 3u);
    EXPECT_EQ(observed[0], RecoverableTournamentMutex::kIdle);
    EXPECT_EQ(observed[1], RecoverableTournamentMutex::kInCS);
    EXPECT_EQ(observed[2], RecoverableTournamentMutex::kIdle);
}

sim::SimTask<void> recover_only(RecoverableTournamentMutex& mx, Process& p,
                                RecoveryOutcome& out) {
    co_await mx.recover_slot(p, 0, out);
}

TEST(RecoverableMutex, RecoverOnIdleReportsNothingToRepair) {
    MutexRig rig(/*m=*/2);
    Process& p = rig.sys.process(0);
    RecoveryOutcome out = RecoveryOutcome::InCriticalSection;
    p.set_task(recover_only(*rig.mx, p, out));
    sim::run_solo(rig.sys, 0, /*max_steps=*/1000);
    ASSERT_TRUE(p.finished());
    EXPECT_EQ(out, RecoveryOutcome::None);
}

sim::SimTask<void> enter_then_recover(RecoverableTournamentMutex& mx,
                                      Process& p, RecoveryOutcome& out,
                                      std::uint64_t& recover_steps) {
    co_await mx.enter(p, 0);
    // Measure the InCS recovery path in isolation via the per-section step
    // counters (stats are recorded before the coroutine resumes, so the
    // delta read here already includes recover_slot's last step).
    p.set_section(Section::Recover);
    const std::uint64_t before = p.stats().steps[kRecoverIdx];
    co_await mx.recover_slot(p, 0, out);
    recover_steps = p.stats().steps[kRecoverIdx] - before;
}

TEST(RecoverableMutex, RecoverInsideTheCSIsConstantTime) {
    // Stage InCS -> the CSR-critical path: recovery must re-assert lock
    // ownership in O(1), not re-run the entry.
    MutexRig rig(/*m=*/2);
    Process& p = rig.sys.process(0);
    RecoveryOutcome out = RecoveryOutcome::None;
    std::uint64_t recover_steps = 0;
    p.set_task(enter_then_recover(*rig.mx, p, out, recover_steps));
    sim::run_solo(rig.sys, 0, /*max_steps=*/1000);
    ASSERT_TRUE(p.finished());
    EXPECT_EQ(out, RecoveryOutcome::InCriticalSection);
    EXPECT_LE(recover_steps, 2u);
    EXPECT_EQ(rig.mx->stage_of(rig.sys.memory(), 0),
              RecoverableTournamentMutex::kInCS);
}

TEST(RecoverableRWLock, RejectsGroupsWiderThanAWord) {
    System sys(Protocol::WriteBack);
    // f=1 puts all n readers in one group: n > 64 cannot fit one presence
    // bit per member in a 64-bit group word.
    EXPECT_THROW(recover::RecoverableRWLock(sys.memory(), "rrw", /*n=*/65,
                                            /*m=*/1, /*f=*/1),
                 std::invalid_argument);
    EXPECT_NO_THROW(recover::RecoverableRWLock(sys.memory(), "rrw2",
                                               /*n=*/65, /*m=*/1, /*f=*/2));
}

// ---- RME checker teeth -----------------------------------------------------
// Hand-built broken "protocols" (tasks that set sections without any lock)
// prove the checker actually fires; without these, zero violations in the
// explore tests would be indistinguishable from a checker that checks
// nothing.

sim::SimTask<void> fake_cs_passage(Process& p, std::uint64_t entry_steps,
                                   std::uint64_t cs_steps) {
    p.set_section(Section::Entry);
    for (std::uint64_t i = 0; i < entry_steps; ++i) {
        co_await p.local_step();
    }
    p.set_section(Section::Critical);
    for (std::uint64_t i = 0; i < cs_steps; ++i) {
        co_await p.local_step();
    }
    p.set_section(Section::Exit);
    co_await p.local_step();
    p.set_section(Section::Remainder);
    p.note_passage_complete();
}

sim::SimTask<void> recover_then_remainder(Process& p, std::uint64_t steps) {
    for (std::uint64_t i = 0; i < steps; ++i) {
        co_await p.local_step();
    }
    p.set_section(Section::Remainder);
}

TEST(RmeCheckerTeeth, FlagsMutualExclusionViolationUnderCrashes) {
    System sys(Protocol::WriteBack);
    Process& p0 = sys.add_process(Role::Writer);
    Process& p1 = sys.add_process(Role::Writer);
    p0.set_task(fake_cs_passage(p0, 1, 5));
    p1.set_task(fake_cs_passage(p1, 1, 5));
    RmeChecker::Options opts;
    opts.throw_on_violation = false;
    RmeChecker checker(opts);
    sys.add_observer(&checker);

    sim::RoundRobinScheduler sched;
    sim::run(sys, sched, /*max_steps=*/100);
    sys.check_failures();

    EXPECT_GT(checker.violations(), 0u);
    EXPECT_NE(checker.first_violation().find("mutual exclusion"),
              std::string::npos);
}

TEST(RmeCheckerTeeth, FlagsConflictingEntryBeforeCrashedProcessReenters) {
    // p0 crashes inside its (fake) CS and its recovery never re-enters;
    // p1 -- held in a long entry section until after the crash -- then
    // waltzes into the CS. That is precisely a Critical-Section Reentry
    // violation and the checker must say so. (The two are never in the CS
    // simultaneously, so the plain ME predicate stays silent.)
    System sys(Protocol::WriteBack);
    Process& p0 = sys.add_process(Role::Writer);
    Process& p1 = sys.add_process(Role::Writer);
    p0.set_task(fake_cs_passage(p0, 1, 8));
    p0.set_restart_factory(
        [](Process& q) { return recover_then_remainder(q, 2); });
    p1.set_task(fake_cs_passage(p1, 6, 3));
    FaultInjector injector(
        sys, FaultPlan{}.crash_restart(/*victim=*/0, Section::Critical, 2));
    sys.add_observer(&injector);
    RmeChecker::Options opts;
    opts.throw_on_violation = false;
    RmeChecker checker(opts);
    sys.add_observer(&checker);

    sim::RoundRobinScheduler sched;
    sim::run(sys, sched, /*max_steps=*/200);
    sys.check_failures();

    EXPECT_EQ(injector.num_fired(), 1u);
    EXPECT_EQ(checker.total_restarts(), 1u);
    EXPECT_GT(checker.violations(), 0u);
    EXPECT_NE(checker.first_violation().find("CS Reentry"),
              std::string::npos);
}

TEST(RmeCheckerTeeth, FlagsRecoveryExceedingTheConfiguredBound) {
    System sys(Protocol::WriteBack);
    Process& p0 = sys.add_process(Role::Writer);
    p0.set_task(fake_cs_passage(p0, 1, 2));
    p0.set_restart_factory(
        [](Process& q) { return recover_then_remainder(q, 10); });
    FaultInjector injector(
        sys, FaultPlan{}.crash_restart(/*victim=*/0, Section::Critical, 1));
    sys.add_observer(&injector);
    RmeChecker::Options opts;
    opts.throw_on_violation = false;
    opts.recovery_step_bound = 3;
    RmeChecker checker(opts);
    sys.add_observer(&checker);

    sim::RoundRobinScheduler sched;
    sim::run(sys, sched, /*max_steps=*/200);
    sys.check_failures();

    EXPECT_GT(checker.violations(), 0u);
    EXPECT_NE(checker.first_violation().find("bounded recovery"),
              std::string::npos);
    EXPECT_GT(checker.max_recovery_steps(), 3u);
}

TEST(RmeCheckerTeeth, FlagsCumulativeChainRecoveryAcrossNestedCrashes) {
    // Two chained recoveries of 2 and 5 steps: each episode individually
    // respects a per-episode bound of 5, but the crash CHAIN accumulates
    // 7 Recover steps -- only the chain bound can see it. This is the
    // Chan-Woelfel-style adversary the plain bound is blind to.
    System sys(Protocol::WriteBack);
    Process& p0 = sys.add_process(Role::Writer);
    p0.set_task(fake_cs_passage(p0, 1, 2));
    p0.set_restart_factory(
        [](Process& q) { return recover_then_remainder(q, 5); });
    FaultInjector injector(
        sys, FaultPlan{}
                 .crash_restart(/*victim=*/0, Section::Critical, 1)
                 .crash_restart(/*victim=*/0, Section::Recover, 2,
                                /*min_restarts=*/1));
    sys.add_observer(&injector);
    RmeChecker::Options opts;
    opts.throw_on_violation = false;
    opts.recovery_step_bound = 5;        // Each episode fits...
    opts.chain_recovery_step_bound = 6;  // ...the chain does not.
    RmeChecker checker(opts);
    sys.add_observer(&checker);

    sim::RoundRobinScheduler sched;
    sim::run(sys, sched, /*max_steps=*/200);
    sys.check_failures();

    EXPECT_EQ(injector.num_fired(), 2u);
    EXPECT_EQ(checker.total_restarts(), 2u);
    EXPECT_LE(checker.max_recovery_steps(), 5u);
    EXPECT_EQ(checker.max_chain_recovery_steps(), 7u);
    EXPECT_GT(checker.violations(), 0u);
    EXPECT_NE(checker.first_violation().find("bounded chain recovery"),
              std::string::npos)
        << checker.first_violation();
}

sim::SimTask<void> recover_then_passage(Process& p, std::uint64_t rec_steps,
                                        std::uint64_t cs_steps) {
    for (std::uint64_t i = 0; i < rec_steps; ++i) {
        co_await p.local_step();  // Still in Section::Recover.
    }
    // An inline passage, so a later-generation fault keyed to Critical can
    // fire after this recovery completed.
    p.set_section(Section::Entry);
    co_await p.local_step();
    p.set_section(Section::Critical);
    for (std::uint64_t i = 0; i < cs_steps; ++i) {
        co_await p.local_step();
    }
    p.set_section(Section::Exit);
    co_await p.local_step();
    p.set_section(Section::Remainder);
    p.note_passage_complete();
}

TEST(RmeCheckerTeeth, ChainCounterResetsOnANormalCrash) {
    // Same two-crash shape, but the second crash lands in the CRITICAL
    // section of the recovered passage, not inside Recover: the chain
    // latch resets, the two 5-step recoveries never sum, and the chain
    // bound of 6 holds. Distinguishes "many crashes" (fine) from "crashes
    // during recovery" (the chain).
    System sys(Protocol::WriteBack);
    Process& p0 = sys.add_process(Role::Writer);
    p0.set_task(fake_cs_passage(p0, 1, 4));
    p0.set_restart_factory([](Process& q) {
        return recover_then_passage(q, /*rec_steps=*/5, /*cs_steps=*/3);
    });
    FaultInjector injector(
        sys, FaultPlan{}
                 .crash_restart(/*victim=*/0, Section::Critical, 1)
                 .crash_restart(/*victim=*/0, Section::Critical, 2,
                                /*min_restarts=*/1)
                 .require_all_fired());
    sys.add_observer(&injector);
    RmeChecker::Options opts;
    opts.throw_on_violation = false;
    opts.chain_recovery_step_bound = 6;
    RmeChecker checker(opts);
    sys.add_observer(&checker);

    sim::RoundRobinScheduler sched;
    sim::run(sys, sched, /*max_steps=*/300);
    sys.check_failures();
    injector.assert_all_fired();  // Both generations really fired.

    EXPECT_EQ(checker.total_restarts(), 2u);
    EXPECT_EQ(checker.max_chain_recovery_steps(), 5u);
    EXPECT_EQ(checker.violations(), 0u) << checker.first_violation();
}

// ---- Experiment-level behaviour --------------------------------------------

RecoverExperimentConfig base_cfg(RecoverLockKind kind) {
    RecoverExperimentConfig cfg;
    cfg.lock = kind;
    cfg.n = (kind == RecoverLockKind::Mutex ||
             kind == RecoverLockKind::JJJMutex)
                ? 0
                : 2;
    cfg.m = 2;
    cfg.f = 1;
    cfg.passages = 2;
    cfg.cs_steps = 2;
    cfg.sched = harness::SchedKind::RoundRobin;
    cfg.max_steps = 100000;
    return cfg;
}

TEST(RecoverExperiment, CrashInsideTheCSRecoversWithBoundedRecovery) {
    // The Golab-Ramaraju InCS path: recovery re-asserts ownership in O(1)
    // steps, so even a tight bound passes.
    for (const auto kind : {RecoverLockKind::Mutex, RecoverLockKind::RwLock}) {
        auto cfg = base_cfg(kind);
        cfg.faults.crash_restart(/*victim=*/0, Section::Critical, 1);
        cfg.recovery_step_bound = 2;
        const auto res = recover::run_recover_experiment(cfg);
        EXPECT_TRUE(res.finished) << to_string(kind);
        EXPECT_EQ(res.restarts, 1u) << to_string(kind);
        EXPECT_EQ(res.me_violations, 0u) << to_string(kind);
        EXPECT_EQ(res.rme_violations, 0u)
            << to_string(kind) << ": " << res.first_violation;
        EXPECT_LE(res.max_recovery_steps, 2u) << to_string(kind);
        EXPECT_GE(res.total_passages,
                  cfg.passages * (kind == RecoverLockKind::Mutex
                                      ? cfg.m
                                      : cfg.n + cfg.m))
            << to_string(kind);
    }
}

TEST(RecoverExperiment, CrashMidExitFinishesTheReleaseDuringRecovery) {
    for (const auto kind : {RecoverLockKind::Mutex, RecoverLockKind::RwLock}) {
        auto cfg = base_cfg(kind);
        cfg.faults.crash_restart(/*victim=*/0, Section::Exit, 1);
        const auto res = recover::run_recover_experiment(cfg);
        EXPECT_TRUE(res.finished) << to_string(kind);
        EXPECT_EQ(res.restarts, 1u) << to_string(kind);
        EXPECT_EQ(res.me_violations, 0u) << to_string(kind);
        EXPECT_EQ(res.rme_violations, 0u)
            << to_string(kind) << ": " << res.first_violation;
    }
}

TEST(RecoverExperiment, SurvivesACrashStormUnderRandomScheduling) {
    for (const auto kind : {RecoverLockKind::Mutex, RecoverLockKind::RwLock}) {
        auto cfg = base_cfg(kind);
        cfg.sched = harness::SchedKind::Random;
        cfg.seed = 17;
        cfg.passages = 3;
        const std::uint32_t procs =
            kind == RecoverLockKind::Mutex ? cfg.m : cfg.n + cfg.m;
        // Two crashes per process, spread over sections.
        static constexpr Section kSecs[3] = {Section::Entry, Section::Critical,
                                             Section::Exit};
        for (std::uint32_t i = 0; i < 2 * procs; ++i) {
            cfg.faults.crash_restart(i % procs, kSecs[i % 3], 1 + i / 3);
        }
        const auto res = recover::run_recover_experiment(cfg);
        EXPECT_TRUE(res.finished) << to_string(kind);
        EXPECT_EQ(res.restarts, 2u * procs) << to_string(kind);
        EXPECT_EQ(res.me_violations, 0u)
            << to_string(kind) << ": " << res.first_violation;
        EXPECT_EQ(res.rme_violations, 0u)
            << to_string(kind) << ": " << res.first_violation;
    }
}

TEST(RecoverExperiment, NestedCrashIsAddressableViaMinRestarts) {
    // {Recover, 1, min_restarts 1} names "one step into the recovery of
    // the first crash" exactly; the run must survive the chain with the
    // chain accumulator visible in the result.
    for (const auto kind :
         {RecoverLockKind::Mutex, RecoverLockKind::JJJMutex,
          RecoverLockKind::RwLock}) {
        auto cfg = base_cfg(kind);
        cfg.faults.crash_restart(/*victim=*/0, Section::Critical, 1);
        cfg.faults.crash_restart(/*victim=*/0, Section::Recover, 1,
                                 /*min_restarts=*/1);
        cfg.faults.require_all_fired();
        const auto res = recover::run_recover_experiment(cfg);
        EXPECT_TRUE(res.finished) << to_string(kind);
        EXPECT_EQ(res.restarts, 2u) << to_string(kind);
        EXPECT_EQ(res.faults_fired, 2u) << to_string(kind);
        EXPECT_EQ(res.me_violations + res.rme_violations, 0u)
            << to_string(kind) << ": " << res.first_violation;
        EXPECT_GE(res.max_chain_recovery_steps, res.max_recovery_steps)
            << to_string(kind);
        EXPECT_GT(res.max_chain_recovery_steps, 0u) << to_string(kind);
    }
}

TEST(RecoverExperiment, RecoverySummaryCountsEveryEpisode) {
    auto cfg = base_cfg(RecoverLockKind::Mutex);
    cfg.faults.crash_restart(/*victim=*/0, Section::Entry, 1);
    cfg.faults.crash_restart(/*victim=*/1, Section::Critical, 1);
    cfg.faults.require_all_fired();
    const auto res = recover::run_recover_experiment(cfg);
    ASSERT_TRUE(res.finished);
    EXPECT_EQ(res.recovery.episodes, 2u);
    EXPECT_GT(res.recovery.max_steps, 0u);
    EXPECT_GE(static_cast<double>(res.recovery.max_rmrs),
              res.recovery.mean_rmrs);
    EXPECT_GE(static_cast<double>(res.recovery.max_steps),
              res.recovery.mean_steps);
    EXPECT_EQ(res.stalled_at_exit, 0u);
}

TEST(RecoverExperiment, RequireAllFiredPropagatesToTheRunner) {
    auto cfg = base_cfg(RecoverLockKind::Mutex);
    cfg.faults.crash_restart(/*victim=*/0, Section::Entry, 9999);
    cfg.faults.require_all_fired();
    EXPECT_THROW(recover::run_recover_experiment(cfg), std::runtime_error);
    // The same unfired placement without the flag is ordinary data.
    cfg.faults.require_all_fired(false);
    const auto res = recover::run_recover_experiment(cfg);
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.faults_fired, 0u);
}

bool same_deterministic_fields(const RecoverExperimentResult& a,
                               const RecoverExperimentResult& b) {
    return a.finished == b.finished && a.steps == b.steps &&
           a.total_passages == b.total_passages && a.restarts == b.restarts &&
           a.max_recovery_steps == b.max_recovery_steps &&
           a.max_chain_recovery_steps == b.max_chain_recovery_steps &&
           a.recovery.episodes == b.recovery.episodes &&
           a.recovery.mean_rmrs == b.recovery.mean_rmrs &&
           a.recovery.max_rmrs == b.recovery.max_rmrs &&
           a.faults_fired == b.faults_fired &&
           a.stalled_at_exit == b.stalled_at_exit &&
           a.me_violations == b.me_violations &&
           a.rme_violations == b.rme_violations && a.schedule == b.schedule &&
           a.readers.num_passages == b.readers.num_passages &&
           a.readers.mean_passage_rmrs == b.readers.mean_passage_rmrs &&
           a.writers.num_passages == b.writers.num_passages &&
           a.writers.mean_passage_rmrs == b.writers.mean_passage_rmrs;
}

TEST(RecoverExperiment, SweepCellsAreBitIdenticalAcrossJobCounts) {
    // The bench_recoverable acceptance: which worker runs a cell cannot
    // influence the cell (everything except wall_ms is a pure function of
    // the config). Mixed grid over all four lock kinds, schedules recorded
    // to sharpen the check.
    std::vector<RecoverExperimentConfig> cfgs;
    for (const auto kind :
         {RecoverLockKind::Mutex, RecoverLockKind::JJJMutex,
          RecoverLockKind::RwLock, RecoverLockKind::RwLockJJJ}) {
        for (const std::uint64_t seed : {1, 2, 3}) {
            auto cfg = base_cfg(kind);
            cfg.sched = harness::SchedKind::Random;
            cfg.seed = seed;
            cfg.record_schedule = true;
            cfg.faults.crash_restart(0, Section::Critical, 1);
            cfg.faults.crash_restart(1, Section::Entry, 2);
            cfgs.push_back(cfg);
        }
    }
    std::vector<RecoverExperimentResult> r1(cfgs.size());
    std::vector<RecoverExperimentResult> r8(cfgs.size());
    harness::parallel_for(cfgs.size(), /*jobs=*/1, [&](std::size_t i) {
        r1[i] = recover::run_recover_experiment(cfgs[i]);
    });
    harness::parallel_for(cfgs.size(), /*jobs=*/8, [&](std::size_t i) {
        r8[i] = recover::run_recover_experiment(cfgs[i]);
    });
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        EXPECT_TRUE(same_deterministic_fields(r1[i], r8[i])) << "cell " << i;
        EXPECT_TRUE(r1[i].finished) << "cell " << i;
        EXPECT_EQ(r1[i].me_violations + r1[i].rme_violations, 0u)
            << "cell " << i << ": " << r1[i].first_violation;
    }
}

}  // namespace
}  // namespace rwr
