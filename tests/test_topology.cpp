// Topology discovery (native/topology.hpp) and the topology-aware reader
// placement mode of the native AfLock. Parsing and sysfs discovery are
// tested against synthetic inputs (including a fake sysfs tree written
// under the build directory); the lock-level tests pin the process-wide
// topology with RWR_TOPOLOGY *before* the first system_topology() call --
// which works because gtest_discover_tests runs every test case as its own
// ctest process.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "native/af_lock.hpp"
#include "native/shared_mutex.hpp"
#include "native/topology.hpp"

namespace {

using namespace rwr::native;
namespace topo = rwr::native::topo;
namespace fs = std::filesystem;

using U32s = std::vector<std::uint32_t>;

TEST(TopologyParse, CpuListHandlesRangesAndSingles) {
    EXPECT_EQ(topo::parse_cpu_list("0-3,8"), (U32s{0, 1, 2, 3, 8}));
    EXPECT_EQ(topo::parse_cpu_list("5"), (U32s{5}));
    EXPECT_EQ(topo::parse_cpu_list("0,2,4-5\n"), (U32s{0, 2, 4, 5}));
}

TEST(TopologyParse, CpuListRejectsMalformedInput) {
    EXPECT_TRUE(topo::parse_cpu_list("").empty());
    EXPECT_TRUE(topo::parse_cpu_list("a-b").empty());
    EXPECT_TRUE(topo::parse_cpu_list("3-1").empty());
    EXPECT_TRUE(topo::parse_cpu_list("1;2").empty());
}

TEST(TopologyParse, DomainMapDensifiesIdsInAppearanceOrder) {
    const topo::CacheTopology t = topo::parse_domain_map("4,4,7,7,4");
    EXPECT_EQ(t.num_domains, 2u);
    EXPECT_EQ(t.domain_of(0), 0u);
    EXPECT_EQ(t.domain_of(1), 0u);
    EXPECT_EQ(t.domain_of(2), 1u);
    EXPECT_EQ(t.domain_of(3), 1u);
    EXPECT_EQ(t.domain_of(4), 0u);
    // Out-of-range cpus (and sched_getcpu failure, cpu = -1) map to 0.
    EXPECT_EQ(t.domain_of(99), 0u);
    EXPECT_EQ(t.domain_of(-1), 0u);
}

TEST(TopologyParse, MalformedDomainMapFallsBackToOneDomain) {
    for (const char* bad : {"", "0,x,1", "zebra"}) {
        const topo::CacheTopology t = topo::parse_domain_map(bad);
        EXPECT_EQ(t.num_domains, 1u) << "input: " << bad;
        EXPECT_TRUE(t.domain_of_cpu.empty()) << "input: " << bad;
    }
}

TEST(TopologyDiscover, MissingSysfsFallsBackToOneDomain) {
    const topo::CacheTopology t =
        topo::discover_sysfs("/nonexistent-rwr-sysfs-root");
    EXPECT_EQ(t.num_domains, 1u);
    EXPECT_TRUE(t.domain_of_cpu.empty());
}

/// Writes a minimal fake sysfs cpu tree in the CWD (the build directory
/// under ctest). Each entry of `indices` is one cache level:
/// {type, shared_cpu_list for cpu c}.
class FakeSysfs {
public:
    explicit FakeSysfs(const std::string& name) : root_(fs::path(name)) {
        fs::remove_all(root_);
    }
    ~FakeSysfs() { fs::remove_all(root_); }

    void add_cache(std::uint32_t cpu, std::uint32_t index,
                   const std::string& type, const std::string& list) {
        const fs::path base = root_ / ("cpu" + std::to_string(cpu)) /
                              "cache" / ("index" + std::to_string(index));
        fs::create_directories(base);
        std::ofstream(base / "type") << type << "\n";
        std::ofstream(base / "shared_cpu_list") << list << "\n";
    }

    [[nodiscard]] std::string path() const { return root_.string(); }

private:
    fs::path root_;
};

TEST(TopologyDiscover, GroupsCpusByLastLevelCacheSharing) {
    FakeSysfs sys("rwr_fake_sysfs_llc");
    for (std::uint32_t cpu = 0; cpu < 4; ++cpu) {
        // Private L1 per cpu, split LLC: {0,1} vs {2,3}.
        sys.add_cache(cpu, 0, "Data", std::to_string(cpu));
        sys.add_cache(cpu, 1, "Unified", cpu < 2 ? "0-1" : "2-3");
    }
    const topo::CacheTopology t = topo::discover_sysfs(sys.path());
    EXPECT_EQ(t.num_domains, 2u);
    EXPECT_EQ(t.domain_of(0), 0u);
    EXPECT_EQ(t.domain_of(1), 0u);
    EXPECT_EQ(t.domain_of(2), 1u);
    EXPECT_EQ(t.domain_of(3), 1u);
}

TEST(TopologyDiscover, InstructionCachesAreIgnored) {
    FakeSysfs sys("rwr_fake_sysfs_icache");
    for (std::uint32_t cpu = 0; cpu < 2; ++cpu) {
        // The I-cache claims everything is shared; the data LLC is split.
        // If discovery wrongly honoured index1 (Instruction), both cpus
        // would collapse into one domain.
        sys.add_cache(cpu, 0, "Data", std::to_string(cpu));
        sys.add_cache(cpu, 1, "Instruction", "0-1");
    }
    const topo::CacheTopology t = topo::discover_sysfs(sys.path());
    EXPECT_EQ(t.num_domains, 2u);
    EXPECT_NE(t.domain_of(0), t.domain_of(1));
}

TEST(TopologyDiscover, UnparsableSharedListFallsBack) {
    FakeSysfs sys("rwr_fake_sysfs_bad");
    sys.add_cache(0, 0, "Unified", "not-a-cpulist");
    const topo::CacheTopology t = topo::discover_sysfs(sys.path());
    EXPECT_EQ(t.num_domains, 1u);
}

TEST(TopologyQuery, CurrentDomainIsAlwaysInRange) {
    const topo::CacheTopology& sys = topo::system_topology();
    ASSERT_GE(sys.num_domains, 1u);
    // Exceed kDomainRefreshEvery so at least one cache refresh happens.
    for (std::uint32_t i = 0; i < 4 * topo::kDomainRefreshEvery; ++i) {
        EXPECT_LT(topo::current_domain(), sys.num_domains);
    }
}

// ---- Lock-level placement ------------------------------------------------

TEST(TopologyAfLock, RoundRobinRemainsTheDefaultMap) {
    AfLock lock(8, 1, 4);
    EXPECT_EQ(lock.params().group_map, AfParams::GroupMap::kRoundRobin);
    for (std::uint32_t r = 0; r < 8; ++r) {
        EXPECT_EQ(lock.reader_group(r), r / lock.group_size());
    }
}

TEST(TopologyAfLock, TopologyMapRespectsGroupCapacity) {
    setenv("RWR_TOPOLOGY", "0,0,1,1", 1);
    AfParams params;
    params.group_map = AfParams::GroupMap::kTopology;
    constexpr std::uint32_t kReaders = 8;
    AfLock lock(kReaders, 2, 4, params);  // k = 2, four groups.
    ASSERT_EQ(lock.params().group_map, AfParams::GroupMap::kTopology);
    // Exercise every reader once so each gets a placement.
    for (std::uint32_t r = 0; r < kReaders; ++r) {
        lock.lock_shared(r);
        lock.unlock_shared(r);
    }
    // Injectivity at group granularity: no group can host more ids than it
    // has slots, or two concurrent readers would share an f-array slot.
    std::map<std::uint32_t, std::uint32_t> per_group;
    for (std::uint32_t r = 0; r < kReaders; ++r) {
        const std::uint32_t g = lock.reader_group(r);
        ASSERT_LT(g, kReaders / lock.group_size());
        ++per_group[g];
    }
    for (const auto& [g, count] : per_group) {
        EXPECT_LE(count, lock.group_size()) << "group " << g;
    }
}

TEST(TopologyAfLock, PlacementIsStableAcrossPassages) {
    setenv("RWR_TOPOLOGY", "0,1", 1);
    AfParams params;
    params.group_map = AfParams::GroupMap::kTopology;
    AfLock lock(4, 1, 2, params);
    std::vector<std::uint32_t> first(4);
    for (std::uint32_t r = 0; r < 4; ++r) {
        lock.lock_shared(r);
        lock.unlock_shared(r);
        first[r] = lock.reader_group(r);
    }
    // This process never migrates between (fake) domains, so re-homing must
    // never fire: many more passages than remap_check_every, same groups.
    for (std::uint32_t pass = 0; pass < 4 * lock.params().remap_check_every;
         ++pass) {
        const std::uint32_t r = pass % 4;
        lock.lock_shared(r);
        lock.unlock_shared(r);
        EXPECT_EQ(lock.reader_group(r), first[r]) << "reader " << r;
    }
}

TEST(TopologyAfLock, TopologyModeKeepsReaderWriterExclusion) {
    setenv("RWR_TOPOLOGY", "0,0,1,1", 1);
    AfParams params;
    params.group_map = AfParams::GroupMap::kTopology;
    constexpr std::uint32_t kReaders = 4;
    constexpr std::uint32_t kWriters = 2;
    constexpr int kPassages = 300;
    AfLock lock(kReaders, kWriters, 2, params);
    std::atomic<int> readers_in{0};
    std::atomic<int> writers_in{0};
    std::atomic<bool> violation{false};
    std::vector<std::thread> threads;
    for (std::uint32_t r = 0; r < kReaders; ++r) {
        threads.emplace_back([&, r] {
            for (int p = 0; p < kPassages; ++p) {
                lock.lock_shared(r);
                readers_in.fetch_add(1);
                if (writers_in.load() != 0) {
                    violation.store(true);
                }
                readers_in.fetch_sub(1);
                lock.unlock_shared(r);
            }
        });
    }
    for (std::uint32_t w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            for (int p = 0; p < kPassages; ++p) {
                lock.lock(w);
                if (writers_in.fetch_add(1) != 0 || readers_in.load() != 0) {
                    violation.store(true);
                }
                writers_in.fetch_sub(1);
                lock.unlock(w);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    EXPECT_FALSE(violation.load());
}

TEST(TopologyAfLock, SharedMutexForwardsPlacementParams) {
    setenv("RWR_TOPOLOGY", "0,1", 1);
    AfParams params;
    params.group_map = AfParams::GroupMap::kTopology;
    AfSharedMutex mx(4, 2, /*f=*/2, params);
    EXPECT_EQ(mx.underlying().params().group_map,
              AfParams::GroupMap::kTopology);
    {
        std::shared_lock<AfSharedMutex> sl(mx);
    }
    {
        std::unique_lock<AfSharedMutex> ul(mx);
    }
}

}  // namespace
