// Sim-backend lock table: protocol correctness (witnessed mutual
// exclusion, liveness on both homed and unhomed variants), the OpStream
// determinism discipline (grid rows bit-identical for any --jobs, streams
// decorrelated across sessions), and the homed/unhomed RMR ordering the
// E17 assertions build on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "dist/sim_table.hpp"

namespace rwr::dist {
namespace {

DistSimConfig small_cfg(bool homed, std::uint32_t reader_pct) {
    DistSimConfig c;
    c.table.shards = 2;
    c.table.locks_per_shard = 2;
    c.table.sessions = 6;
    c.table.homed = homed;
    c.ops_per_session = 8;
    c.reader_pct = reader_pct;
    c.writer_cs_steps = 5;
    c.seed = 7;
    return c;
}

TEST(DistSimTable, HomedRunsToCompletionWithoutViolations) {
    for (const std::uint32_t pct : {0u, 50u, 100u}) {
        const DistSimResult r = run_dist_sim(small_cfg(true, pct));
        EXPECT_TRUE(r.finished) << "reader_pct=" << pct;
        EXPECT_EQ(r.witness_violations, 0u) << "reader_pct=" << pct;
        EXPECT_EQ(r.total_ops, 6u * 8u) << "reader_pct=" << pct;
    }
}

TEST(DistSimTable, UnhomedRunsToCompletionWithoutViolations) {
    for (const std::uint32_t pct : {0u, 50u, 100u}) {
        const DistSimResult r = run_dist_sim(small_cfg(false, pct));
        EXPECT_TRUE(r.finished) << "reader_pct=" << pct;
        EXPECT_EQ(r.witness_violations, 0u) << "reader_pct=" << pct;
        EXPECT_EQ(r.total_ops, 6u * 8u) << "reader_pct=" << pct;
    }
}

TEST(DistSimTable, SingleSessionFastPathIsCheap) {
    // Uncontended writer passages: a fixed small number of verbs, all on
    // the shard segment (every one a network RMR), none wasted waiting.
    DistSimConfig c;
    c.table = {1, 1, 1, true};
    c.ops_per_session = 10;
    c.reader_pct = 0;
    c.writer_cs_steps = 1;
    const DistSimResult r = run_dist_sim(c);
    ASSERT_TRUE(r.finished);
    EXPECT_EQ(r.witness_violations, 0u);
    // Acquire (FAA ticket, read grant, write wflag, read rcount, CAS
    // witness) + release (CAS witness, write wflag, write grant, read
    // slot, read rwaiters) = 10 network verbs per op.
    EXPECT_EQ(r.network_rmrs, 10u * 10u);
}

TEST(DistSimTable, UnhomedPaysMoreThanHomedUnderContention) {
    DistSimConfig homed = small_cfg(true, 0);
    DistSimConfig unhomed = small_cfg(false, 0);
    homed.table.shards = unhomed.table.shards = 1;
    homed.table.locks_per_shard = unhomed.table.locks_per_shard = 1;
    homed.writer_cs_steps = unhomed.writer_cs_steps = 12;
    const DistSimResult rh = run_dist_sim(homed);
    const DistSimResult ru = run_dist_sim(unhomed);
    ASSERT_TRUE(rh.finished);
    ASSERT_TRUE(ru.finished);
    EXPECT_GT(ru.network_rmrs_per_op, rh.network_rmrs_per_op);
}

TEST(DistSimTable, GridIsBitIdenticalForAnyJobsValue) {
    std::vector<DistSimConfig> cfgs;
    for (const bool homed : {true, false}) {
        for (const std::uint32_t pct : {0u, 90u}) {
            cfgs.push_back(small_cfg(homed, pct));
        }
    }
    const auto a = run_dist_sim_grid(cfgs, 1);
    const auto b = run_dist_sim_grid(cfgs, 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].steps, b[i].steps) << "cell " << i;
        EXPECT_EQ(a[i].total_ops, b[i].total_ops) << "cell " << i;
        EXPECT_EQ(a[i].read_ops, b[i].read_ops) << "cell " << i;
        EXPECT_EQ(a[i].network_rmrs, b[i].network_rmrs) << "cell " << i;
        EXPECT_EQ(a[i].session_rmrs, b[i].session_rmrs) << "cell " << i;
    }
}

TEST(DistOpStream, SameSeedSameStream) {
    OpStream a(42, 3);
    OpStream b(42, 3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(DistOpStream, SessionsAreDecorrelated) {
    // Adjacent sessions (and adjacent seeds) must not produce overlapping
    // streams -- the double splitmix mix guarantees distinct prefixes.
    std::set<std::uint64_t> draws;
    constexpr int kPerStream = 64;
    for (std::uint32_t s = 0; s < 16; ++s) {
        OpStream st(1, s);
        for (int i = 0; i < kPerStream; ++i) {
            draws.insert(st.next());
        }
    }
    EXPECT_EQ(draws.size(), 16u * kPerStream);
}

TEST(DistOpStream, ReaderPctBoundaries) {
    OpStream st(9, 0);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(st.next_op(4, 0).reader);
        EXPECT_TRUE(st.next_op(4, 100).reader);
    }
    OpStream st2(9, 1);
    for (int i = 0; i < 50; ++i) {
        EXPECT_LT(st2.next_op(3, 50).lock_index, 3u);
    }
}

}  // namespace
}  // namespace rwr::dist
