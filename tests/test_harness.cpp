// Tests for the experiment harness itself: registry round-trips,
// experiment aggregation arithmetic, scenario-factory determinism, and the
// table printer (the benches' output path).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "harness/experiment.hpp"
#include "harness/seeds.hpp"
#include "harness/table.hpp"
#include "sim/por.hpp"
#include "sim/scheduler.hpp"

namespace rwr::harness {
namespace {

TEST(Registry, EveryKindConstructsAndNames) {
    for (const LockKind kind : all_lock_kinds()) {
        sim::System sys(Protocol::WriteBack);
        auto lock = make_sim_lock(kind, sys.memory(), 4, 2, 2);
        ASSERT_NE(lock, nullptr);
        EXPECT_FALSE(lock->name().empty());
        EXPECT_NE(to_string(kind), "?");
    }
}

TEST(Registry, AfClampsF) {
    sim::System sys(Protocol::WriteBack);
    // f = 100 > n = 4 must clamp rather than throw: sweeps pass raw f.
    auto lock = make_sim_lock(LockKind::Af, sys.memory(), 4, 1, 100);
    EXPECT_EQ(lock->name(), "A_f(f=4)");
    auto lock0 = make_sim_lock(LockKind::Af, sys.memory(), 4, 1, 0);
    EXPECT_EQ(lock0->name(), "A_f(f=1)");
}

TEST(Experiment, AggregationArithmetic) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.n = 3;
    cfg.m = 2;
    cfg.f = 1;
    cfg.passages = 5;
    cfg.sched = SchedKind::RoundRobin;
    const auto res = run_experiment(cfg);
    ASSERT_TRUE(res.finished);
    EXPECT_EQ(res.readers.num_passages, 15u);
    EXPECT_EQ(res.writers.num_passages, 10u);
    // Means never exceed maxima; maxima are attained by some passage.
    for (int s = 0; s < kNumSections; ++s) {
        EXPECT_LE(res.readers.mean_rmrs[s],
                  static_cast<double>(res.readers.max_rmrs[s]) + 1e-9);
        EXPECT_LE(res.writers.mean_rmrs[s],
                  static_cast<double>(res.writers.max_rmrs[s]) + 1e-9);
    }
    EXPECT_LE(res.readers.mean_passage_rmrs,
              static_cast<double>(res.readers.max_passage_rmrs) + 1e-9);
    // Passage totals decompose into sections.
    EXPECT_GE(res.readers.max_passage_rmrs, res.readers.max_rmrs[1]);
}

TEST(Experiment, RoundRobinIsDeterministic) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Centralized;
    cfg.n = 4;
    cfg.m = 1;
    cfg.passages = 3;
    cfg.sched = SchedKind::RoundRobin;
    const auto a = run_experiment(cfg);
    const auto b = run_experiment(cfg);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.readers.mean_passage_rmrs, b.readers.mean_passage_rmrs);
}

TEST(Experiment, SeedsChangeRandomRuns) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Centralized;
    cfg.n = 4;
    cfg.m = 2;
    cfg.passages = 3;
    cfg.seed = 1;
    const auto a = run_experiment(cfg);
    cfg.seed = 2;
    const auto b = run_experiment(cfg);
    // Overwhelmingly likely to differ in step counts.
    EXPECT_NE(a.steps, b.steps);
}

TEST(Experiment, ScenarioFactoryBuildsIdenticalSystems) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.n = 2;
    cfg.m = 1;
    cfg.f = 2;
    cfg.passages = 1;
    auto factory = scenario_factory(cfg);
    const std::vector<std::size_t> choices{0, 1, 2, 0, 1, 2, 1, 1, 0};
    std::uint64_t steps[2];
    for (int i = 0; i < 2; ++i) {
        auto sc = factory();
        sim::ReplayScheduler sched(choices);
        steps[i] = sim::run(*sc.sys, sched, 10'000).steps;
    }
    EXPECT_EQ(steps[0], steps[1]);
}

TEST(Seeds, StreamSeedIsTheCanonicalDerivation) {
    // The harness helper must BE sim::stream_seed, not a second mixing
    // scheme -- one rule repo-wide (explore_run_seed and the dist OpStream
    // already delegate to it).
    for (std::uint64_t i = 0; i < 32; ++i) {
        EXPECT_EQ(stream_seed(42, i), sim::stream_seed(42, i));
        EXPECT_EQ(stream_seed(42, i, 7),
                  sim::stream_seed(sim::stream_seed(42, i), 7));
    }
}

TEST(Seeds, AdjacentBasesAndLevelsAreDecorrelated) {
    // The regression the double mix fixes: under a naive `base + i`
    // derivation, adjacent bases share almost every derived seed. Both
    // levels of the helper must keep adjacent bases, adjacent indices and
    // the one-vs-two-level namespaces fully disjoint.
    constexpr std::uint64_t kRuns = 64;
    std::set<std::uint64_t> all;
    for (std::uint64_t base : {41ull, 42ull, 43ull}) {
        for (std::uint64_t i = 0; i < kRuns; ++i) {
            all.insert(stream_seed(base, i));
            all.insert(stream_seed(base, i, 0));
            all.insert(stream_seed(base, i, 1));
        }
    }
    // Every (base, i[, j]) combination produced a distinct seed.
    EXPECT_EQ(all.size(), 3u * kRuns * 3u);
}

TEST(Table, AlignsAndPrints) {
    Table t({"col", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| longer |"), std::string::npos);
    EXPECT_NE(out.find("|    22 |"), std::string::npos);
    // 3 separator lines + header + 2 rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(Table, FmtHelpers) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(std::uint64_t{42}), "42");
    EXPECT_EQ(fmt(-7), "-7");
}

}  // namespace
}  // namespace rwr::harness
