// The verb/RMR equivalence differential (ISSUE 9 satellite): every
// sim-backend verb must produce exactly the per-ProcId Memory ledger delta
// the DSM remote-iff-not-home rule predicts -- SimVerbMemory's
// predicted_network_rmr states the rule independently, and these tests
// grind apply() against it across all (session, segment, verb-code)
// combinations, checking the returned rmr bit, the issuer's ledger delta,
// and everyone else's non-delta.
#include <gtest/gtest.h>

#include <vector>

#include "dist/layout.hpp"
#include "dist/sim_table.hpp"
#include "dist/verbs.hpp"
#include "rmr/memory.hpp"

namespace rwr::dist {
namespace {

constexpr std::uint32_t kShards = 2;
constexpr std::uint32_t kSessions = 3;
constexpr ProcId kServerBase = 100;

SimVerbMemory make_svm(Memory& mem) {
    const std::vector<std::uint32_t> seg_words(kShards + kSessions, 4);
    return SimVerbMemory(mem, kShards, kSessions, seg_words, kServerBase);
}

TEST(DistVerbs, HomingConventionMatchesOwnerBase) {
    Memory mem(Protocol::Dsm);
    const SimVerbMemory svm = make_svm(mem);
    // Shard segments are homed at virtual server pids above the client
    // range; client segment shards+s is homed at ProcId s.
    EXPECT_EQ(svm.home_of(0), kServerBase + 0);
    EXPECT_EQ(svm.home_of(1), kServerBase + 1);
    EXPECT_EQ(svm.home_of(kShards + 0), 0);
    EXPECT_EQ(svm.home_of(kShards + 2), 2);
}

TEST(DistVerbs, EveryVerbMatchesThePredictedLedgerDelta) {
    Memory mem(Protocol::Dsm);
    SimVerbMemory svm = make_svm(mem);
    const std::uint32_t num_segs = kShards + kSessions;
    for (ProcId p = 0; p < kSessions; ++p) {
        for (std::uint32_t seg = 0; seg < num_segs; ++seg) {
            const GlobalAddr a{seg, 1};
            const Verb verbs[] = {Verb::read(a), Verb::write(a, 7),
                                  Verb::cas(a, 7, 9), Verb::faa(a, 2)};
            for (const Verb& v : verbs) {
                std::vector<std::uint64_t> before(kSessions);
                for (ProcId q = 0; q < kSessions; ++q) {
                    before[q] = mem.rmrs_by(q);
                }
                const bool predicted = svm.predicted_network_rmr(p, seg);
                const VerbResult r = svm.apply(p, v);
                EXPECT_EQ(r.network_rmr, predicted)
                    << "p=" << p << " seg=" << seg << " verb "
                    << to_string(v.code);
                EXPECT_EQ(mem.rmrs_by(p) - before[p],
                          predicted ? 1u : 0u)
                    << "issuer ledger delta, p=" << p << " seg=" << seg
                    << " verb " << to_string(v.code);
                for (ProcId q = 0; q < kSessions; ++q) {
                    if (q != p) {
                        EXPECT_EQ(mem.rmrs_by(q), before[q])
                            << "bystander " << q << " charged";
                    }
                }
            }
            // Reset the word so the CAS in the next round still exercises
            // both outcomes deterministically.
            svm.apply(p, Verb::write(a, 0));
        }
    }
}

TEST(DistVerbs, VerbValueSemantics) {
    Memory mem(Protocol::Dsm);
    SimVerbMemory svm = make_svm(mem);
    const GlobalAddr a{0, 0};
    EXPECT_EQ(svm.apply(0, Verb::read(a)).value, 0u);
    svm.apply(0, Verb::write(a, 41));
    EXPECT_EQ(svm.apply(0, Verb::read(a)).value, 41u);
    // FAA returns the pre-add value.
    EXPECT_EQ(svm.apply(1, Verb::faa(a, 1)).value, 41u);
    EXPECT_EQ(svm.apply(1, Verb::read(a)).value, 42u);
    // CAS returns the pre-op value whether it hits or misses.
    EXPECT_EQ(svm.apply(2, Verb::cas(a, 42, 50)).value, 42u);
    EXPECT_EQ(svm.apply(2, Verb::cas(a, 42, 60)).value, 50u);
    EXPECT_EQ(svm.apply(0, Verb::read(a)).value, 50u);
}

TEST(DistVerbs, SessionLedgersSumToTotalWhenOnlySessionsStep) {
    // The virtual shard homes never issue verbs, so the sum of session
    // ledgers must equal Memory's global count -- the invariant
    // run_dist_sim relies on when it reports network_rmrs.
    Memory mem(Protocol::Dsm);
    SimVerbMemory svm = make_svm(mem);
    std::uint64_t expect_total = 0;
    for (ProcId p = 0; p < kSessions; ++p) {
        for (std::uint32_t seg = 0; seg < kShards + kSessions; ++seg) {
            svm.apply(p, Verb::faa({seg, 0}, 1));
            if (svm.predicted_network_rmr(p, seg)) {
                ++expect_total;
            }
        }
    }
    std::uint64_t sum = 0;
    for (ProcId p = 0; p < kSessions; ++p) {
        sum += mem.rmrs_by(p);
    }
    EXPECT_EQ(sum, expect_total);
}

TEST(DistVerbs, TableLayoutAddressesAreDisjointAndCovering) {
    // flat_index must be a bijection onto [0, total_words): every lock
    // field, wslot, bitmap word and gate lands on its own word.
    const TableConfig cfg{2, 3, 5, true};
    const TableLayout lay(cfg);
    std::vector<int> hits(lay.total_words(), 0);
    auto touch = [&](GlobalAddr a) { ++hits[lay.flat_index(a)]; };
    for (std::uint32_t lock = 0; lock < cfg.num_locks(); ++lock) {
        for (const auto f :
             {LockField::WTicket, LockField::WGrant, LockField::WFlag,
              LockField::RCount, LockField::RWaiters, LockField::WWitness}) {
            touch(lay.lock_word(lock, f));
        }
        for (std::uint64_t t = 0; t < cfg.sessions; ++t) {
            touch(lay.wslot_word(lock, t));
        }
        for (std::uint32_t w = 0; w < lay.bitmap_words(); ++w) {
            touch(lay.rbitmap_word(lock, w));
        }
    }
    for (std::uint32_t s = 0; s < cfg.sessions; ++s) {
        touch(lay.gate_word(s));
    }
    std::size_t used = 0;
    for (const int h : hits) {
        EXPECT_LE(h, 1) << "two addresses collide";
        used += h > 0 ? 1 : 0;
    }
    // Everything except client-segment padding is covered.
    EXPECT_EQ(used, lay.total_words() -
                        std::uint64_t{cfg.sessions} * (kClientSegWords - 1));
}

TEST(DistVerbs, WslotEncodingRoundTrips) {
    const Word v = TableLayout::encode_wslot(12345, 17);
    EXPECT_TRUE(TableLayout::wslot_matches(v, 12345));
    EXPECT_FALSE(TableLayout::wslot_matches(v, 12346));
    EXPECT_FALSE(TableLayout::wslot_matches(0, 0));  // Empty never matches.
    EXPECT_EQ(TableLayout::wslot_session(v), 17u);
}

}  // namespace
}  // namespace rwr::dist
