// The homed-spin invariants behind the CC/DSM separation (bench_separation,
// E15): for every simulated lock with a DSM mode -- Yang-Anderson
// tournament, MCS, the recoverable JJJ ticket tree, A_f with
// dsm_local_spin -- a parked waiter's busy-wait loop must touch only
// variables homed in its own segment (bounded RMRs while it spins), while
// the unhomed builds of the same locks pay one RMR per re-read. Plus
// correctness of the new DSM machinery itself: the Y-A lock and the JJJ
// wake layer never change who wins, only where the losers spin.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "harness/experiment.hpp"
#include "mutex/sim_mutex.hpp"
#include "recover/recover_experiment.hpp"
#include "recover/recoverable_jjj_mutex.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace rwr {
namespace {

using mutex::McsSimMutex;
using mutex::SimMutex;
using mutex::TournamentSimMutex;
using mutex::YaTournamentSimMutex;
using recover::RecoverableJJJMutex;
using sim::Process;
using sim::Role;
using sim::SimTask;
using sim::System;

/// Exclusivity tracked with a plain counter, like test_mutex's harness.
struct Harness {
    int in_cs = 0;
    int max_seen = 0;
    std::uint64_t total_entries = 0;
};

SimTask<void> mutex_passages(SimMutex& mx, Process& p, std::uint32_t slot,
                             int passages, Harness* h) {
    for (int k = 0; k < passages; ++k) {
        co_await mx.enter(p, slot);
        h->in_cs += 1;
        h->max_seen = std::max(h->max_seen, h->in_cs);
        h->total_entries += 1;
        co_await p.local_step();
        h->in_cs -= 1;
        co_await mx.exit(p, slot);
    }
}

SimTask<void> jjj_passages(RecoverableJJJMutex& mx, Process& p,
                           std::uint32_t slot, int passages, Harness* h) {
    for (int k = 0; k < passages; ++k) {
        co_await mx.enter(p, slot);
        h->in_cs += 1;
        h->max_seen = std::max(h->max_seen, h->in_cs);
        h->total_entries += 1;
        co_await p.local_step();
        h->in_cs -= 1;
        co_await mx.exit_slot(p, slot);
    }
}

// ---- Yang-Anderson correctness ---------------------------------------------

TEST(YaTournament, ExhaustiveSmallSchedules) {
    // All interleavings of the first 12 scheduling choices, 2 processes x
    // 2 passages: the side/turn/spin handshake must preserve mutual
    // exclusion on every explored schedule. Homed build (homes are
    // accounting-only, but this is the build E15 trusts).
    long long schedules = 0;
    std::vector<std::size_t> prefix;
    std::function<void(int)> dfs = [&](int depth) {
        System sys(Protocol::WriteThrough);
        YaTournamentSimMutex mx(sys.memory(), "mx", 2, ProcId{0});
        auto h = std::make_unique<Harness>();
        for (std::uint32_t s = 0; s < 2; ++s) {
            Process& p = sys.add_process(Role::Writer);
            p.set_task(mutex_passages(mx, p, s, 2, h.get()));
        }
        sys.start_all();
        for (const auto c : prefix) {
            const auto r = sys.runnable();
            if (r.empty()) break;
            sys.step(r[c % r.size()]);
        }
        const auto width = sys.runnable().size();
        sim::RoundRobinScheduler rr;
        sim::run(sys, rr, 100'000);
        sys.check_failures();
        ASSERT_EQ(h->max_seen, 1);
        ASSERT_EQ(h->total_entries, 4u);
        ++schedules;
        if (depth == 0 || width <= 1) return;
        for (std::size_t c = 0; c < width; ++c) {
            prefix.push_back(c);
            dfs(depth - 1);
            prefix.pop_back();
        }
    };
    dfs(12);
    EXPECT_GT(schedules, 1000);
}

TEST(YaTournament, MutualExclusionAndProgressUnderRandomSchedules) {
    for (const std::uint32_t m : {2u, 3u, 5u, 8u}) {
        for (const bool homed : {false, true}) {
            for (std::uint64_t seed = 0; seed < 4; ++seed) {
                System sys(Protocol::WriteBack);
                YaTournamentSimMutex mx(
                    sys.memory(), "mx", m,
                    homed ? std::optional<ProcId>{0} : std::nullopt);
                auto h = std::make_unique<Harness>();
                constexpr int kPassages = 5;
                for (std::uint32_t s = 0; s < m; ++s) {
                    Process& p = sys.add_process(Role::Writer);
                    p.set_task(mutex_passages(mx, p, s, kPassages, h.get()));
                }
                sim::RandomScheduler sched(seed);
                const auto result = sim::run(sys, sched, 5'000'000);
                sys.check_failures();
                ASSERT_TRUE(result.all_finished)
                    << "m=" << m << " homed=" << homed << " seed=" << seed;
                EXPECT_EQ(h->max_seen, 1) << "m=" << m << " seed=" << seed;
                EXPECT_EQ(h->total_entries,
                          static_cast<std::uint64_t>(m) * kPassages);
            }
        }
    }
}

// ---- The homed-spin invariant, lock by lock --------------------------------

/// Parks slot 0's process inside the CS, then lets slot 1's process run
/// `spin_steps` solo steps against the closed door; returns the waiter's
/// total RMRs. The homed locks must keep this O(1) (enqueue/announce only);
/// unhomed spins pay ~one RMR per re-read.
template <typename Lock, typename Passages>
std::uint64_t waiter_rmrs(System& sys, Lock& mx, Passages&& passages,
                          Harness* h, int spin_steps) {
    Process& p0 = sys.add_process(Role::Writer);
    Process& p1 = sys.add_process(Role::Writer);
    p0.set_task(passages(mx, p0, 0, 1, h));
    p1.set_task(passages(mx, p1, 1, 1, h));
    sys.start_all();
    int guard = 0;
    while (h->in_cs == 0 && guard++ < 1000) {
        sys.step(p0.id());
    }
    EXPECT_EQ(h->in_cs, 1);
    for (int i = 0; i < spin_steps; ++i) {
        sys.step(p1.id());
    }
    const std::uint64_t rmrs = p1.stats().total_rmrs();
    sim::RoundRobinScheduler rr;
    EXPECT_TRUE(sim::run(sys, rr, 100'000).all_finished);
    EXPECT_EQ(h->max_seen, 1);
    return rmrs;
}

TEST(YaTournament, WaiterSpinsLocallyUnderDsm) {
    System sys(Protocol::Dsm);
    YaTournamentSimMutex mx(sys.memory(), "mx", 2, ProcId{0});
    auto h = std::make_unique<Harness>();
    const auto rmrs = waiter_rmrs(sys, mx, mutex_passages, h.get(), 500);
    // Entry writes (comp/turn are shared), one nudge of the rival's cell,
    // one turn re-read: O(1), not O(spins).
    EXPECT_LE(rmrs, 12u);
}

TEST(PetersonTournament, UnhomedSpinPaysPerRereadUnderDsm) {
    // The structural ablation: the Peterson tree's per-node flags are spun
    // on by whichever rival shows up, so no home assignment helps -- the
    // 500-step wait shows up in the RMR ledger near-verbatim.
    System sys(Protocol::Dsm);
    TournamentSimMutex mx(sys.memory(), "mx", 2);
    auto h = std::make_unique<Harness>();
    const auto rmrs = waiter_rmrs(sys, mx, mutex_passages, h.get(), 500);
    EXPECT_GE(rmrs, 100u);
}

TEST(McsLock, SerializedPassagesCostO1DsmRmrsPerPassage) {
    // Satellite claim for the homed-tail MCS: with queue nodes homed at
    // their owners and the tail at the coordinator, an uncontended passage
    // costs O(1) DSM RMRs -- independent of m (each non-coordinator pays
    // the two tail CASes, nothing grows). Contended round-robin cells are
    // asserted relatively (vs CC) in bench_separation, where tail CAS
    // retries make every model's cost Theta(m).
    for (const std::uint32_t m : {2u, 8u}) {
        System sys(Protocol::Dsm);
        McsSimMutex mx(sys.memory(), "mx", m, /*owner_base=*/0);
        auto h = std::make_unique<Harness>();
        constexpr int kPassages = 3;
        for (std::uint32_t s = 0; s < m; ++s) {
            Process& p = sys.add_process(Role::Writer);
            p.set_task(mutex_passages(mx, p, s, kPassages, h.get()));
        }
        sys.start_all();
        for (std::uint32_t s = 0; s < m; ++s) {
            sim::run_solo(sys, s, 100'000);  // One process at a time.
            ASSERT_TRUE(sys.process(s).finished()) << "m=" << m;
        }
        EXPECT_EQ(h->max_seen, 1);
        const double per_passage =
            static_cast<double>(sys.memory().total_rmrs()) /
            (static_cast<double>(m) * kPassages);
        EXPECT_LE(per_passage, 6.0) << "m=" << m;
    }
}

TEST(McsLock, CoordinatorSoloPassagesAreRmrFreeUnderDsm) {
    // Everything -- tail included -- is homed at the coordinator, so its
    // own uncontended passages are entirely local.
    System sys(Protocol::Dsm);
    McsSimMutex mx(sys.memory(), "mx", 1, /*owner_base=*/0);
    auto h = std::make_unique<Harness>();
    Process& p = sys.add_process(Role::Writer);
    p.set_task(mutex_passages(mx, p, 0, 10, h.get()));
    sys.start_all();
    sim::run_solo(sys, 0, 100'000);
    ASSERT_TRUE(p.finished());
    EXPECT_EQ(sys.memory().total_rmrs(), 0u);
}

// ---- JJJ wake layer --------------------------------------------------------

TEST(JjjDsm, MutualExclusionWithWakeLayerUnderRandomSchedules) {
    // The wake layer is advisory: grant[] stays authoritative, so enabling
    // it must never change who may enter, on any schedule.
    for (const std::uint32_t m : {2u, 3u, 5u}) {
        for (std::uint64_t seed = 0; seed < 4; ++seed) {
            System sys(Protocol::WriteBack);
            RecoverableJJJMutex mx(sys.memory(), "mx", m, /*delta=*/0,
                                   /*owner_base=*/ProcId{0});
            auto h = std::make_unique<Harness>();
            constexpr int kPassages = 5;
            for (std::uint32_t s = 0; s < m; ++s) {
                Process& p = sys.add_process(Role::Writer);
                p.set_task(jjj_passages(mx, p, s, kPassages, h.get()));
            }
            sim::RandomScheduler sched(seed);
            const auto result = sim::run(sys, sched, 5'000'000);
            sys.check_failures();
            ASSERT_TRUE(result.all_finished) << "m=" << m << " seed=" << seed;
            EXPECT_EQ(h->max_seen, 1) << "m=" << m << " seed=" << seed;
            EXPECT_EQ(h->total_entries,
                      static_cast<std::uint64_t>(m) * kPassages);
        }
    }
}

TEST(JjjDsm, WaiterSpinsLocallyOnItsWakeCell) {
    System sys(Protocol::Dsm);
    RecoverableJJJMutex mx(sys.memory(), "mx", 2, /*delta=*/0,
                           /*owner_base=*/ProcId{0});
    auto h = std::make_unique<Harness>();
    const auto rmrs = waiter_rmrs(sys, mx, jjj_passages, h.get(), 500);
    // Ticket acquisition + one register/re-check round, then a pure
    // wcell spin: O(tree height), not O(spins).
    EXPECT_LE(rmrs, 24u);
}

TEST(JjjDsm, UnhomedGrantSpinPaysPerRereadUnderDsm) {
    System sys(Protocol::Dsm);
    RecoverableJJJMutex mx(sys.memory(), "mx", 2);
    auto h = std::make_unique<Harness>();
    const auto rmrs = waiter_rmrs(sys, mx, jjj_passages, h.get(), 500);
    EXPECT_GE(rmrs, 100u);
}

TEST(JjjDsm, EntryCrashWalkStaysCorrectWithTheWakeLayer) {
    // Crash-restart at every entry step IN DSM MODE: the walk crosses the
    // wake-layer window (registration written, grant re-check pending).
    // Recovery must re-register or retire cleanly -- no lost wakeups, no
    // double entry -- under both accounting protocols.
    for (const Protocol proto : {Protocol::WriteBack, Protocol::Dsm}) {
        std::uint64_t steps_covered = 0;
        for (std::uint64_t s = 1; s <= 60; ++s) {
            recover::RecoverExperimentConfig cfg;
            cfg.lock = recover::RecoverLockKind::JJJMutex;
            cfg.protocol = proto;
            cfg.dsm_home = true;
            cfg.n = 0;
            cfg.m = 2;
            cfg.passages = 2;
            cfg.sched = harness::SchedKind::RoundRobin;
            cfg.max_steps = 100000;
            cfg.faults.crash_restart(/*victim=*/0, Section::Entry, s);
            const auto res = recover::run_recover_experiment(cfg);
            ASSERT_TRUE(res.finished)
                << to_string(proto) << " entry step " << s;
            if (res.restarts == 0) {
                break;  // Fell off the section's end: coverage complete.
            }
            EXPECT_EQ(res.me_violations, 0u)
                << to_string(proto) << " entry step " << s << ": "
                << res.first_violation;
            EXPECT_EQ(res.rme_violations, 0u)
                << to_string(proto) << " entry step " << s << ": "
                << res.first_violation;
            ++steps_covered;
        }
        EXPECT_GE(steps_covered, 4u) << to_string(proto);
        EXPECT_LT(steps_covered, 60u) << to_string(proto);
    }
}

// ---- A_f with dsm_local_spin -----------------------------------------------

TEST(AfDsm, FullLockStaysCorrectUnderBothProtocols) {
    // dsm_local_spin only moves the reader wait loop onto per-reader gates
    // and swaps WL for the Y-A tournament; the RW semantics must be
    // untouched under CC and DSM accounting alike.
    for (const Protocol proto : {Protocol::WriteBack, Protocol::Dsm}) {
        for (std::uint64_t seed = 0; seed < 3; ++seed) {
            harness::ExperimentConfig cfg;
            cfg.lock = harness::LockKind::AfDsm;
            cfg.protocol = proto;
            cfg.n = 8;
            cfg.m = 1;
            cfg.f = 2;
            cfg.passages = 3;
            cfg.seed = seed;
            cfg.check_mutual_exclusion = true;
            const auto res = harness::run_experiment(cfg);
            ASSERT_TRUE(res.finished)
                << to_string(proto) << " seed=" << seed;
            EXPECT_EQ(res.me_violations, 0u)
                << to_string(proto) << " seed=" << seed;
        }
    }
}

TEST(AfDsm, WaitingReaderSpinsOnItsOwnGate) {
    // The E11b scenario, fixed: a reader waiting out a writer's long CS
    // re-reads its OWN gate (homed at itself), so the wait no longer
    // leaks into the DSM RMR count. The plain build's line-36 RSIG spin
    // is the control.
    constexpr std::uint64_t kHold = 512;
    const auto entry_rmrs = [&](harness::LockKind kind) {
        System sys(Protocol::Dsm);
        auto lock = harness::make_sim_lock(kind, sys.memory(), 1, 1, 1);
        Process& r = sys.add_process(Role::Reader);
        Process& w = sys.add_process(Role::Writer);
        sim::DriveConfig rc;
        rc.passages = 1;
        r.set_task(sim::drive_passages(*lock, r, rc));
        sim::DriveConfig wc;
        wc.passages = 1;
        wc.cs_steps = kHold;
        w.set_task(sim::drive_passages(*lock, w, wc));
        sys.start_all();
        sim::run_solo(sys, w.id(), 100'000,
                      [](const Process& p) { return p.in_cs(); });
        while (w.in_cs() && w.runnable()) {
            sys.step(r.id());
            sys.step(w.id());
        }
        sim::RoundRobinScheduler rr;
        EXPECT_TRUE(sim::run(sys, rr, 100'000).all_finished);
        return r.stats().rmrs_in(Section::Entry);
    };
    EXPECT_LE(entry_rmrs(harness::LockKind::AfDsm), 30u);
    EXPECT_GE(entry_rmrs(harness::LockKind::Af), kHold / 2);
}

}  // namespace
}  // namespace rwr
