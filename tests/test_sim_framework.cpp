// Tests for the coroutine step-machine framework (src/sim): suspension at
// every shared op, pending-op visibility, nesting, schedulers, section
// accounting, and the passage driver.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "sim/checker.hpp"
#include "sim/rwlock.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"
#include "sim/task.hpp"

namespace rwr::sim {
namespace {

SimTask<void> write_three(Process& p, VarId v) {
    co_await p.write(v, 1);
    co_await p.write(v, 2);
    co_await p.write(v, 3);
}

TEST(SimFramework, StepsExecuteOneAtATime) {
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v");
    Process& p = sys.add_process(Role::Reader);
    p.set_task(write_three(p, v));
    sys.start_all();

    ASSERT_TRUE(p.runnable());
    EXPECT_EQ(p.pending().code, OpCode::Write);
    EXPECT_EQ(p.pending().arg0, 1u);
    EXPECT_EQ(sys.memory().peek(v), 0u);  // Pending op not yet applied.

    EXPECT_TRUE(sys.step(p.id()));
    EXPECT_EQ(sys.memory().peek(v), 1u);
    EXPECT_EQ(p.pending().arg0, 2u);

    sys.step(p.id());
    sys.step(p.id());
    EXPECT_TRUE(p.finished());
    EXPECT_FALSE(sys.step(p.id()));  // Finished processes can't step.
    EXPECT_EQ(sys.memory().peek(v), 3u);
}

SimTask<void> reader_of(Process& p, VarId v, Word* out) {
    *out = co_await p.read(v);
}

TEST(SimFramework, ReadDeliversValue) {
    System sys(Protocol::WriteBack);
    const VarId v = sys.memory().allocate("v", 77);
    Process& p = sys.add_process(Role::Reader);
    Word result = 0;
    p.set_task(reader_of(p, v, &result));
    sys.start_all();
    sys.step(p.id());
    EXPECT_EQ(result, 77u);
}

SimTask<void> cas_loop_increment(Process& p, VarId v, int times) {
    for (int i = 0; i < times; ++i) {
        for (;;) {
            const Word cur = co_await p.read(v);
            const Word prior = co_await p.cas(v, cur, cur + 1);
            if (prior == cur) {
                break;  // CAS succeeded.
            }
        }
    }
}

TEST(SimFramework, CasLoopUnderContention) {
    System sys(Protocol::WriteBack);
    const VarId v = sys.memory().allocate("v", 0);
    constexpr int kProcs = 4;
    constexpr int kIncs = 10;
    for (int i = 0; i < kProcs; ++i) {
        Process& p = sys.add_process(Role::Reader);
        p.set_task(cas_loop_increment(p, v, kIncs));
    }
    RandomScheduler sched(12345);
    const auto result = run(sys, sched, 1'000'000);
    ASSERT_TRUE(result.all_finished);
    EXPECT_EQ(sys.memory().peek(v), static_cast<Word>(kProcs * kIncs));
}

// Nested tasks: inner coroutine's steps must surface as scheduler decision
// points of the outer process.
SimTask<Word> inner_sum(Process& p, VarId a, VarId b) {
    const Word x = co_await p.read(a);
    const Word y = co_await p.read(b);
    co_return x + y;
}

SimTask<void> outer(Process& p, VarId a, VarId b, VarId out) {
    const Word s = co_await inner_sum(p, a, b);
    co_await p.write(out, s);
}

TEST(SimFramework, NestedTasksSuspendPerStep) {
    System sys(Protocol::WriteThrough);
    const VarId a = sys.memory().allocate("a", 3);
    const VarId b = sys.memory().allocate("b", 4);
    const VarId out = sys.memory().allocate("out", 0);
    Process& p = sys.add_process(Role::Reader);
    p.set_task(outer(p, a, b, out));
    sys.start_all();

    // Exactly three shared steps: read a, read b, write out.
    int steps = 0;
    while (p.runnable()) {
        sys.step(p.id());
        ++steps;
    }
    EXPECT_EQ(steps, 3);
    EXPECT_EQ(sys.memory().peek(out), 7u);
}

SimTask<void> deeply_nested(Process& p, VarId v, int depth) {
    if (depth == 0) {
        co_await p.write(v, 1 + co_await p.read(v));
        co_return;
    }
    co_await deeply_nested(p, v, depth - 1);
    co_await deeply_nested(p, v, depth - 1);
}

TEST(SimFramework, RecursiveNesting) {
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v", 0);
    Process& p = sys.add_process(Role::Reader);
    p.set_task(deeply_nested(p, v, 6));  // 2^6 = 64 increments.
    RoundRobinScheduler rr;
    run(sys, rr, 10'000);
    EXPECT_TRUE(p.finished());
    EXPECT_EQ(sys.memory().peek(v), 64u);
}

SimTask<void> thrower(Process& p, VarId v) {
    co_await p.read(v);
    throw std::runtime_error("boom");
}

TEST(SimFramework, ExceptionsAreCapturedAndSurface) {
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v");
    Process& p = sys.add_process(Role::Reader);
    p.set_task(thrower(p, v));
    sys.start_all();
    sys.step(p.id());
    EXPECT_TRUE(p.failed());
    EXPECT_FALSE(p.runnable());
    EXPECT_THROW(sys.check_failures(), std::runtime_error);
}

TEST(SimFramework, TeardownMidExecutionIsClean) {
    // Destroying a system with suspended (even nested) coroutines must not
    // leak or crash; exercised under ASan in CI-style runs.
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v", 0);
    Process& p = sys.add_process(Role::Reader);
    p.set_task(deeply_nested(p, v, 4));
    sys.start_all();
    sys.step(p.id());
    sys.step(p.id());
    // System (and coroutine frames) destroyed here while suspended.
}

SimTask<void> local_stepper(Process& p, int k) {
    for (int i = 0; i < k; ++i) {
        co_await p.local_step();
    }
}

TEST(SimFramework, LocalStepsDontTouchMemoryOrRmr) {
    System sys(Protocol::WriteThrough);
    Process& p = sys.add_process(Role::Reader);
    p.set_task(local_stepper(p, 5));
    RoundRobinScheduler rr;
    const auto result = run(sys, rr, 100);
    EXPECT_TRUE(result.all_finished);
    EXPECT_EQ(result.steps, 5u);
    EXPECT_EQ(sys.memory().total_steps(), 0u);
    EXPECT_EQ(p.stats().total_rmrs(), 0u);
    EXPECT_EQ(p.stats().total_steps(), 5u);
}

TEST(SimFramework, SectionAttribution) {
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v");
    Process& p = sys.add_process(Role::Reader);

    auto body = [](Process& proc, VarId var) -> SimTask<void> {
        proc.set_section(Section::Entry);
        co_await proc.read(var);   // 1 entry step (RMR: first read).
        proc.set_section(Section::Critical);
        co_await proc.local_step();
        proc.set_section(Section::Exit);
        co_await proc.write(var, 1);  // 1 exit step (RMR).
        proc.set_section(Section::Remainder);
    };
    p.set_task(body(p, v));
    RoundRobinScheduler rr;
    run(sys, rr, 100);

    EXPECT_EQ(p.stats().steps_in(Section::Entry), 1u);
    EXPECT_EQ(p.stats().rmrs_in(Section::Entry), 1u);
    EXPECT_EQ(p.stats().steps_in(Section::Critical), 1u);
    EXPECT_EQ(p.stats().rmrs_in(Section::Critical), 0u);
    EXPECT_EQ(p.stats().steps_in(Section::Exit), 1u);
    EXPECT_EQ(p.stats().rmrs_in(Section::Exit), 1u);
}

// --- Schedulers --------------------------------------------------------------

TEST(Schedulers, RoundRobinIsFair) {
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v");
    std::vector<Process*> procs;
    for (int i = 0; i < 3; ++i) {
        Process& p = sys.add_process(Role::Reader);
        p.set_task(cas_loop_increment(p, v, 5));
        procs.push_back(&p);
    }
    RoundRobinScheduler rr;
    const auto result = run(sys, rr, 100'000);
    EXPECT_TRUE(result.all_finished);
    EXPECT_EQ(sys.memory().peek(v), 15u);
}

TEST(Schedulers, ReplayIsDeterministic) {
    auto build = [] {
        auto sys = std::make_unique<System>(Protocol::WriteThrough);
        const VarId v = sys->memory().allocate("v");
        for (int i = 0; i < 2; ++i) {
            Process& p = sys->add_process(Role::Reader);
            p.set_task(cas_loop_increment(p, v, 2));
        }
        return std::pair{std::move(sys), v};
    };
    // The same choice sequence must produce the same step count and state.
    const std::vector<std::size_t> choices{0, 1, 1, 0, 1, 0, 0, 1};
    std::uint64_t steps1 = 0;
    Word val1 = 0;
    {
        auto [sys, v] = build();
        ReplayScheduler sched(choices);
        steps1 = run(*sys, sched, 1000).steps;
        val1 = sys->memory().peek(v);
    }
    auto [sys, v] = build();
    ReplayScheduler sched(choices);
    EXPECT_EQ(run(*sys, sched, 1000).steps, steps1);
    EXPECT_EQ(sys->memory().peek(v), val1);
}

TEST(Schedulers, RunSoloStopsAtPredicate) {
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v");
    Process& p = sys.add_process(Role::Reader);
    p.set_task(write_three(p, v));
    const auto steps = run_solo(sys, p.id(), 100, [](const Process& proc) {
        return proc.pending().arg0 == 3;  // Stop before the third write.
    });
    EXPECT_EQ(steps, 2u);
    EXPECT_EQ(sys.memory().peek(v), 2u);
    EXPECT_TRUE(p.runnable());
}

}  // namespace
}  // namespace rwr::sim
