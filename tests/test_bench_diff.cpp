// Unit tests for the bench_compare join/diff engine (harness/bench_diff.hpp)
// on in-memory documents. The load-bearing behaviour: rows present in the
// baseline but absent from the new run are a HARD failure (a vanished row
// would let a regression hide by deleting its row), while rows only the new
// run has are informational.
#include <gtest/gtest.h>

#include <string>

#include "harness/bench_diff.hpp"
#include "harness/bench_json.hpp"

namespace rwr::harness {
namespace {

using bench::DiffOptions;
using bench::DiffReport;

json::Value make_row(const std::string& lock, std::uint64_t n,
                     double reader_mean, double writer_mean,
                     double steps_per_sec = 1e6, double wall_ms = 100.0) {
    auto row = json::Value::object();
    row.set("lock", lock);
    row.set("protocol", "write-back");
    row.set("n", n);
    row.set("m", std::uint64_t{1});
    row.set("f", std::uint64_t{1});
    row.set("threads", n + 1);
    auto rmr = json::Value::object();
    rmr.set("reader_mean_passage", reader_mean);
    rmr.set("reader_max_passage", reader_mean);
    rmr.set("writer_mean_passage", writer_mean);
    rmr.set("writer_max_passage", writer_mean);
    row.set("sim_rmr", std::move(rmr));
    auto perf = json::Value::object();
    perf.set("steps", std::uint64_t{1000});
    perf.set("wall_ms", wall_ms);
    perf.set("steps_per_sec", steps_per_sec);
    row.set("sim_perf", std::move(perf));
    return row;
}

json::Value* results_of(json::Value& doc) {
    // make_doc pre-creates "results"; set() replaces it and returns a
    // mutable reference to the stored value.
    return &doc.set("results", json::Value::array());
}

TEST(BenchDiff, IdenticalDocsPass) {
    auto oldd = bench::make_doc("t");
    auto newd = bench::make_doc("t");
    results_of(oldd)->push_back(make_row("af", 8, 10.0, 5.0));
    results_of(newd)->push_back(make_row("af", 8, 10.0, 5.0));
    const DiffReport rep = bench::diff(oldd, newd, DiffOptions{});
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.joined, 1u);
    EXPECT_TRUE(rep.regressions.empty());
    EXPECT_TRUE(rep.missing.empty());
    EXPECT_TRUE(rep.added.empty());
}

TEST(BenchDiff, MissingBaselineRowIsAHardFailure) {
    auto oldd = bench::make_doc("t");
    auto newd = bench::make_doc("t");
    auto* old_rows = results_of(oldd);
    old_rows->push_back(make_row("af", 8, 10.0, 5.0));
    old_rows->push_back(make_row("af", 16, 12.0, 5.0));
    // The new run silently dropped the n=16 cell -- and even improved the
    // surviving row, which must not mask the missing one.
    results_of(newd)->push_back(make_row("af", 8, 9.0, 4.0));
    const DiffReport rep = bench::diff(oldd, newd, DiffOptions{});
    EXPECT_FALSE(rep.ok());
    EXPECT_EQ(rep.joined, 1u);
    EXPECT_TRUE(rep.regressions.empty());
    ASSERT_EQ(rep.missing.size(), 1u);
    // The message names the vanished row precisely.
    EXPECT_EQ(rep.missing[0], "t/af/write-back/n16/m1/f1/t17/w-");
}

TEST(BenchDiff, AddedRowsAreInformational) {
    auto oldd = bench::make_doc("t");
    auto newd = bench::make_doc("t");
    results_of(oldd)->push_back(make_row("af", 8, 10.0, 5.0));
    auto* new_rows = results_of(newd);
    new_rows->push_back(make_row("af", 8, 10.0, 5.0));
    new_rows->push_back(make_row("af", 16, 12.0, 5.0));
    const DiffReport rep = bench::diff(oldd, newd, DiffOptions{});
    EXPECT_TRUE(rep.ok());  // New coverage is fine.
    ASSERT_EQ(rep.added.size(), 1u);
    EXPECT_EQ(rep.added[0], "t/af/write-back/n16/m1/f1/t17/w-");
}

TEST(BenchDiff, SimRmrIncreaseBeyondToleranceRegresses) {
    auto oldd = bench::make_doc("t");
    auto newd = bench::make_doc("t");
    results_of(oldd)->push_back(make_row("af", 8, 10.0, 5.0));
    results_of(newd)->push_back(make_row("af", 8, 11.5, 5.0));  // +15%
    const DiffReport rep = bench::diff(oldd, newd, DiffOptions{});
    EXPECT_FALSE(rep.ok());
    ASSERT_EQ(rep.regressions.size(), 1u);
    EXPECT_EQ(rep.regressions[0].metric, "reader_mean_passage");
    EXPECT_DOUBLE_EQ(rep.regressions[0].before, 10.0);
    EXPECT_DOUBLE_EQ(rep.regressions[0].after, 11.5);
    EXPECT_GT(rep.regressions[0].change, 0.10);
}

TEST(BenchDiff, SimRmrDecreaseIsAnImprovementNotARegression) {
    auto oldd = bench::make_doc("t");
    auto newd = bench::make_doc("t");
    results_of(oldd)->push_back(make_row("af", 8, 10.0, 5.0));
    results_of(newd)->push_back(make_row("af", 8, 5.0, 2.0));
    EXPECT_TRUE(bench::diff(oldd, newd, DiffOptions{}).ok());
}

TEST(BenchDiff, PerfDropGatedByWallClockFloor) {
    // steps_per_sec halves in both rows, but only the row where both runs
    // spent >= min_perf_ms of wall time may flag: sub-floor cells measure
    // scheduler jitter, not engine speed.
    auto oldd = bench::make_doc("t");
    auto newd = bench::make_doc("t");
    auto* old_rows = results_of(oldd);
    auto* new_rows = results_of(newd);
    old_rows->push_back(make_row("af", 8, 10.0, 5.0, 1e6, /*wall_ms=*/100.0));
    new_rows->push_back(make_row("af", 8, 10.0, 5.0, 4e5, /*wall_ms=*/100.0));
    old_rows->push_back(make_row("af", 16, 10.0, 5.0, 1e6, /*wall_ms=*/0.5));
    new_rows->push_back(make_row("af", 16, 10.0, 5.0, 4e5, /*wall_ms=*/0.5));
    const DiffReport rep = bench::diff(oldd, newd, DiffOptions{});
    ASSERT_EQ(rep.regressions.size(), 1u);
    EXPECT_EQ(rep.regressions[0].metric, "sim_perf.steps_per_sec");
    EXPECT_EQ(rep.regressions[0].key, "t/af/write-back/n8/m1/f1/t9/w-");
}

json::Value make_dist_row(std::uint64_t sessions, double rmrs_per_op,
                          double ops_per_sec, double wall_ms) {
    auto row = json::Value::object();
    row.set("lock", "e17-loopback-homed");
    row.set("protocol", "loopback");
    row.set("n", sessions);
    row.set("m", std::uint64_t{8});
    row.set("f", std::uint64_t{32});
    row.set("threads", std::uint64_t{8});
    row.set("workload", "r90");
    auto d = json::Value::object();
    d.set("ops", std::uint64_t{1000000});
    d.set("network_rmrs_per_op", rmrs_per_op);
    d.set("sessions", sessions);
    d.set("shards", std::uint64_t{8});
    d.set("ops_per_sec", ops_per_sec);
    d.set("wall_ms", wall_ms);
    row.set("dist", std::move(d));
    return row;
}

TEST(BenchDiff, DistNetworkRmrIncreaseRegresses) {
    // The RMR count is deterministic on the sim backend, so it gets the
    // tight max_drop gate: a +15% bump must flag.
    auto oldd = bench::make_doc("t");
    auto newd = bench::make_doc("t");
    results_of(oldd)->push_back(make_dist_row(1024, 16.0, 1e6, 500.0));
    results_of(newd)->push_back(make_dist_row(1024, 18.4, 1e6, 500.0));
    const DiffReport rep = bench::diff(oldd, newd, DiffOptions{});
    EXPECT_FALSE(rep.ok());
    ASSERT_EQ(rep.regressions.size(), 1u);
    EXPECT_EQ(rep.regressions[0].metric, "dist.network_rmrs_per_op");
    // A decrease is an improvement.
    auto better = bench::make_doc("t");
    results_of(better)->push_back(make_dist_row(1024, 12.0, 1e6, 500.0));
    EXPECT_TRUE(bench::diff(oldd, better, DiffOptions{}).ok());
}

TEST(BenchDiff, DistThroughputDropGatedByWallClockFloor) {
    // ops_per_sec halves in both rows; only the cell whose wall time
    // clears min_perf_ms in both runs may flag.
    auto oldd = bench::make_doc("t");
    auto newd = bench::make_doc("t");
    auto* old_rows = results_of(oldd);
    auto* new_rows = results_of(newd);
    old_rows->push_back(make_dist_row(1024, 16.0, 2e6, 500.0));
    new_rows->push_back(make_dist_row(1024, 16.0, 8e5, 500.0));
    old_rows->push_back(make_dist_row(64, 16.0, 2e6, 0.5));
    new_rows->push_back(make_dist_row(64, 16.0, 8e5, 0.5));
    const DiffReport rep = bench::diff(oldd, newd, DiffOptions{});
    ASSERT_EQ(rep.regressions.size(), 1u);
    EXPECT_EQ(rep.regressions[0].metric, "dist.ops_per_sec");
    EXPECT_EQ(rep.regressions[0].key,
              "t/e17-loopback-homed/loopback/n1024/m8/f32/t8/wr90");
}

json::Value make_amortized_row(double writer_amortized, double expected,
                               double ci95 = 0.5) {
    auto row = json::Value::object();
    row.set("lock", "jj-amortized");
    row.set("protocol", "write-back");
    row.set("n", std::uint64_t{0});
    row.set("m", std::uint64_t{8});
    row.set("f", std::uint64_t{1});
    row.set("threads", std::uint64_t{1});
    row.set("workload", "ab50");
    auto a = json::Value::object();
    a.set("episodes", std::uint64_t{96});
    a.set("aborted", std::uint64_t{32});
    a.set("passages", std::uint64_t{64});
    a.set("writer_amortized_rmrs", writer_amortized);
    a.set("expected_rmr", expected);
    a.set("ci95", ci95);
    a.set("trials", std::uint64_t{9});
    row.set("amortized", std::move(a));
    return row;
}

TEST(BenchDiff, AmortizedRmrIncreaseBeyondToleranceRegresses) {
    auto oldd = bench::make_doc("abortable");
    auto newd = bench::make_doc("abortable");
    results_of(oldd)->push_back(make_amortized_row(10.0, 9.0));
    // A crafted 2x regression on both amortized metrics must fire the gate.
    results_of(newd)->push_back(make_amortized_row(20.0, 18.0));
    const DiffReport rep = bench::diff(oldd, newd, DiffOptions{});
    EXPECT_FALSE(rep.ok());
    ASSERT_EQ(rep.regressions.size(), 2u);
    EXPECT_EQ(rep.regressions[0].metric, "writer_amortized_rmrs");
    EXPECT_DOUBLE_EQ(rep.regressions[0].before, 10.0);
    EXPECT_DOUBLE_EQ(rep.regressions[0].after, 20.0);
    EXPECT_DOUBLE_EQ(rep.regressions[0].change, 1.0);
    EXPECT_EQ(rep.regressions[1].metric, "expected_rmr");
}

TEST(BenchDiff, AmortizedNoiseWithinToleranceAndImprovementsPass) {
    auto oldd = bench::make_doc("abortable");
    auto newd = bench::make_doc("abortable");
    auto* old_rows = results_of(oldd);
    old_rows->push_back(make_amortized_row(10.0, 9.0));
    auto* new_rows = results_of(newd);
    // +5% amortized, -10% expectation: inside max_drop, and improvements
    // never regress. ci95/trials are descriptive, not gated.
    new_rows->push_back(make_amortized_row(10.5, 8.1, /*ci95=*/2.0));
    const DiffReport rep = bench::diff(oldd, newd, DiffOptions{});
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.joined, 1u);
}

TEST(BenchDiff, RowKeyUsesDashForAbsentFields) {
    auto row = json::Value::object();
    row.set("lock", "native");
    row.set("n", std::uint64_t{4});
    row.set("f", std::uint64_t{1});
    row.set("threads", std::uint64_t{4});
    row.set("throughput_ops", 1e6);
    EXPECT_EQ(bench::row_key("b", row), "b/native/-/n4/m-/f1/t4/w-");
}

TEST(BenchDiff, WorkloadIsPartOfTheRowKey) {
    // An oversubscribed row and the plain row of the same config must not
    // join against each other -- they measure different workloads.
    auto plain = make_row("af", 8, 10.0, 5.0);
    auto oversub = make_row("af", 8, 10.0, 5.0);
    oversub.set("workload", "oversub");
    EXPECT_NE(bench::row_key("t", plain), bench::row_key("t", oversub));
    EXPECT_EQ(bench::row_key("t", oversub),
              "t/af/write-back/n8/m1/f1/t9/woversub");
}

}  // namespace
}  // namespace rwr::harness
