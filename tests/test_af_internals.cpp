// White-box property tests of Algorithm 1's internal protocol, enforced on
// every step of randomized executions:
//
//  * Counter invariants: for every group i, 0 <= W[i] <= C[i] <= K at every
//    configuration (W counts waiting readers, a subset of the readers C
//    counts as being in a passage -- cf. paper Observation 6).
//  * Handshake uniqueness: per writer passage (sequence number) and group,
//    at most ONE successful PROCEED CAS (line 45) and at most ONE
//    successful CS CAS (line 52) -- "the semantics of CAS ... ensure that
//    exactly one reader succeeds in signalling q".
//  * WSIG transition discipline: successful CASes on WSIG[i] only ever
//    produce the transitions BOT->PROCEED and WAIT->CS, always within the
//    same sequence number.
//  * Single-writer instantiation: with m = 1 the writers' lock WL
//    degenerates to an empty tree, so the m=1 lock IS the paper's
//    single-writer lock with zero WL overhead.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/af_lock_sim.hpp"
#include "core/signals.hpp"
#include "sim/checker.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace rwr::core {
namespace {

using sim::Process;
using sim::Role;
using sim::System;

class AfProtocolAuditor final : public sim::StepObserver {
   public:
    AfProtocolAuditor(const AfSimLock& lock) : lock_(lock) {
        for (std::uint32_t g = 0; g < lock.num_groups(); ++g) {
            wsig_group_[lock.wsig_var(g).index] = g;
        }
    }

    void on_step(const System& sys, const Process& p, const Op& op,
                 const OpResult& res) override {
        (void)p;
        // Counter invariants after every step.
        const auto K = lock_.params().group_size();
        for (std::uint32_t g = 0; g < lock_.num_groups(); ++g) {
            const auto c = lock_.peek_c(sys.memory(), g);
            const auto w = lock_.peek_w(sys.memory(), g);
            if (c < 0 || w < 0 || w > c || c > static_cast<std::int64_t>(K)) {
                ++invariant_violations_;
            }
        }
        // Handshake audit.
        if (op.code == OpCode::Cas && res.nontrivial) {
            auto it = wsig_group_.find(op.var.index);
            if (it == wsig_group_.end()) {
                return;
            }
            const Word old_val = res.value;
            const Word new_val = op.arg1;
            if (sig_seq(old_val) != sig_seq(new_val)) {
                ++bad_transitions_;
                return;
            }
            const auto from = sig_ws_op(old_val);
            const auto to = sig_ws_op(new_val);
            const auto key = std::tuple{it->second, sig_seq(new_val), to};
            if (from == WsOp::Bot && to == WsOp::Proceed) {
                ++signals_[key];
            } else if (from == WsOp::Wait && to == WsOp::Cs) {
                ++signals_[key];
            } else {
                ++bad_transitions_;
            }
        }
    }

    [[nodiscard]] std::uint64_t invariant_violations() const {
        return invariant_violations_;
    }
    [[nodiscard]] std::uint64_t bad_transitions() const {
        return bad_transitions_;
    }
    [[nodiscard]] std::uint64_t duplicate_signals() const {
        std::uint64_t dups = 0;
        for (const auto& [key, count] : signals_) {
            if (count > 1) {
                ++dups;
            }
        }
        return dups;
    }
    [[nodiscard]] std::uint64_t total_signals() const {
        std::uint64_t t = 0;
        for (const auto& [key, count] : signals_) {
            t += count;
        }
        return t;
    }

   private:
    const AfSimLock& lock_;
    std::map<std::uint32_t, std::uint32_t> wsig_group_;
    std::map<std::tuple<std::uint32_t, Word, WsOp>, std::uint64_t> signals_;
    std::uint64_t invariant_violations_ = 0;
    std::uint64_t bad_transitions_ = 0;
};

class AfInternalsSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t /*n*/, std::uint32_t /*m*/,
                     std::uint32_t /*f*/, std::uint64_t /*seed*/>> {};

TEST_P(AfInternalsSweep, ProtocolDiscipline) {
    const auto [n, m, f, seed] = GetParam();
    if (f > n) {
        GTEST_SKIP();
    }
    System sys(Protocol::WriteBack);
    AfParams params{.n = n, .m = m, .f = f};
    AfSimLock lock(sys.memory(), params);
    AfProtocolAuditor auditor(lock);
    sim::MutualExclusionChecker checker(/*throw_on_violation=*/true);
    sys.add_observer(&auditor);
    sys.add_observer(&checker);

    for (std::uint32_t r = 0; r < n; ++r) {
        Process& p = sys.add_process(Role::Reader);
        sim::DriveConfig dc;
        dc.passages = 4;
        p.set_task(sim::drive_passages(lock, p, dc));
    }
    for (std::uint32_t w = 0; w < m; ++w) {
        Process& p = sys.add_process(Role::Writer);
        sim::DriveConfig dc;
        dc.passages = 4;
        p.set_task(sim::drive_passages(lock, p, dc));
    }
    sim::RandomScheduler sched(seed);
    const auto result = sim::run(sys, sched, 20'000'000);
    sys.check_failures();
    ASSERT_TRUE(result.all_finished);

    EXPECT_EQ(auditor.invariant_violations(), 0u)
        << "0 <= W <= C <= K violated";
    EXPECT_EQ(auditor.bad_transitions(), 0u)
        << "WSIG changed outside the BOT->PROCEED / WAIT->CS discipline";
    EXPECT_EQ(auditor.duplicate_signals(), 0u)
        << "two successful CASes signalled the same handshake";
    // Writers performed passages, so at least some handshakes fired.
    EXPECT_GT(auditor.total_signals(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AfInternalsSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Range<std::uint64_t>(0, 5)));

TEST(AfSingleWriter, WlDegeneratesToNothing) {
    // With m = 1, the tournament tree has zero nodes: the writer's entry
    // contains no WL steps at all -- the single-writer lock of Theorem 5
    // comes for free. We verify by counting the writer's entry steps on a
    // quiescent system: exactly 1 (WSEQ) + f (WSIG) + 1 (RSIG) + f (C
    // reads) + f (WSIG) + 1 (RSIG) + f (C reads) = 4f + 3.
    for (const std::uint32_t f : {1u, 2u, 4u}) {
        System sys(Protocol::WriteBack);
        AfParams params{.n = 4, .m = 1, .f = f};
        AfSimLock lock(sys.memory(), params);
        Process& w = sys.add_process(Role::Writer);
        sim::DriveConfig dc;
        dc.passages = 1;
        w.set_task(sim::drive_passages(lock, w, dc));
        sim::RoundRobinScheduler rr;
        ASSERT_TRUE(sim::run(sys, rr, 10'000).all_finished);
        EXPECT_EQ(w.stats().steps_in(Section::Entry), 4u * f + 3u);
    }
}

TEST(AfSoak, ManyPassagesManySequenceNumbers) {
    // 150 writer passages drive WSEQ well past the values any single test
    // sees; the seq-stamped handshakes must keep working (the encoding
    // packs seq << 8, so wraparound is at 2^56 passages -- unreachable;
    // this test guards against accidental truncation of the stamp).
    System sys(Protocol::WriteBack);
    AfParams params{.n = 4, .m = 2, .f = 2};
    AfSimLock lock(sys.memory(), params);
    sim::MutualExclusionChecker checker(true);
    sys.add_observer(&checker);
    for (std::uint32_t r = 0; r < 4; ++r) {
        Process& p = sys.add_process(Role::Reader);
        sim::DriveConfig dc;
        dc.passages = 150;
        p.set_task(sim::drive_passages(lock, p, dc));
    }
    for (std::uint32_t w = 0; w < 2; ++w) {
        Process& p = sys.add_process(Role::Writer);
        sim::DriveConfig dc;
        dc.passages = 150;
        p.set_task(sim::drive_passages(lock, p, dc));
    }
    sim::RandomScheduler sched(77);
    const auto res = sim::run(sys, sched, 100'000'000);
    sys.check_failures();
    ASSERT_TRUE(res.all_finished);
    EXPECT_EQ(checker.violations(), 0u);
    for (ProcId id = 0; id < 6; ++id) {
        EXPECT_EQ(sys.process(id).completed_passages(), 150u);
    }
}

TEST(AfSingleWriter, MultiWriterPaysWlSteps) {
    // Contrast: m = 8 adds 2-process Peterson work per tree level.
    System sys(Protocol::WriteBack);
    AfParams params{.n = 4, .m = 8, .f = 1};
    AfSimLock lock(sys.memory(), params);
    Process& w = sys.add_process(Role::Writer);
    sim::DriveConfig dc;
    dc.passages = 1;
    w.set_task(sim::drive_passages(lock, w, dc));
    sim::RoundRobinScheduler rr;
    ASSERT_TRUE(sim::run(sys, rr, 10'000).all_finished);
    EXPECT_GT(w.stats().steps_in(Section::Entry), 4u * 1 + 3u);
}

}  // namespace
}  // namespace rwr::core
