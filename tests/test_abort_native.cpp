// Abortable/timed acquisition tests for the native tier: AfLock's
// try_lock(_shared)(_for) family, the TournamentMutex abortable climb, the
// AfSharedMutex timed facade, the CheckedLock misuse detector, AfLock's
// built-in misuse assertions, and the harness Watchdog.
//
// The load-bearing property throughout: an aborted acquisition rolls back
// every announcement, so survivors retain Theorem 18's guarantees --
// checked here by finishing every scenario with a full single-threaded
// lock/unlock in both modes, and by a stress test in which a "doomed"
// cohort aborts continuously while a surviving cohort must complete a fixed
// workload.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "harness/watchdog.hpp"
#include "native/af_lock.hpp"
#include "native/checked.hpp"
#include "native/mutex.hpp"
#include "native/shared_mutex.hpp"

namespace rwr::native {
namespace {

using namespace std::chrono_literals;
using harness::StageBoard;
using harness::Watchdog;

/// The lock must be fully functional after the scenario: one passage in
/// each mode, single-threaded.
void expect_lock_intact(AfLock& lock) {
    lock.lock(0);
    lock.unlock(0);
    lock.lock_shared(0);
    ASSERT_FALSE(lock.try_lock(0));  // Reader present: writer try fails.
    lock.unlock_shared(0);
    lock.lock(0);
    lock.unlock(0);
}

// ---- TournamentMutex -------------------------------------------------------

TEST(TournamentMutexAbort, TryLockFailsWhileHeldAndRollsBack) {
    TournamentMutex mx(4);
    mx.lock(1);
    EXPECT_FALSE(mx.try_lock(0));
    EXPECT_FALSE(mx.try_lock_for(2, 20ms));
    mx.unlock(1);
    // The aborted climbs must have left no residue: any slot can lock.
    for (std::uint32_t s = 0; s < 4; ++s) {
        EXPECT_TRUE(mx.try_lock(s));
        mx.unlock(s);
    }
}

TEST(TournamentMutexAbort, TryLockSucceedsWhenFree) {
    TournamentMutex mx(4);
    EXPECT_TRUE(mx.try_lock(3));
    EXPECT_FALSE(mx.try_lock(0));
    mx.unlock(3);
    EXPECT_TRUE(mx.try_lock_for(0, 5ms));
    mx.unlock(0);
}

TEST(TournamentMutexAbort, TimedLockAcquiresOnceReleased) {
    TournamentMutex mx(2);
    mx.lock(0);
    std::atomic<bool> got{false};
    std::thread t([&] { got.store(mx.try_lock_for(1, 2s)); });
    std::this_thread::sleep_for(20ms);
    mx.unlock(0);
    t.join();
    ASSERT_TRUE(got.load());
    mx.unlock(1);
}

// ---- AfLock reader paths ---------------------------------------------------

TEST(AfLockAbort, ReaderTrySucceedsWithoutWriter) {
    AfLock lock(4, 2, 2);
    EXPECT_TRUE(lock.try_lock_shared(0));
    EXPECT_TRUE(lock.try_lock_shared(1));  // Concurrent Entering.
    lock.unlock_shared(0);
    lock.unlock_shared(1);
    expect_lock_intact(lock);
}

TEST(AfLockAbort, ReaderTryFailsWhileWriterHoldsAndRollsBack) {
    AfLock lock(4, 2, 2);
    lock.lock(0);
    // RSIG = WAIT: both the pure try and the timed try must fail.
    EXPECT_FALSE(lock.try_lock_shared(1));
    EXPECT_FALSE(lock.try_lock_shared_for(2, 30ms));
    lock.unlock(0);
    // Rollback must leave C/W consistent: everyone can pass again.
    for (std::uint32_t r = 0; r < 4; ++r) {
        lock.lock_shared(r);
    }
    for (std::uint32_t r = 0; r < 4; ++r) {
        lock.unlock_shared(r);
    }
    expect_lock_intact(lock);
}

TEST(AfLockAbort, TimedReaderAcquiresOnceWriterLeaves) {
    AfLock lock(2, 1, 1);
    lock.lock(0);
    std::atomic<bool> got{false};
    std::thread t([&] { got.store(lock.try_lock_shared_for(0, 2s)); });
    std::this_thread::sleep_for(20ms);
    lock.unlock(0);
    t.join();
    ASSERT_TRUE(got.load());
    lock.unlock_shared(0);
    expect_lock_intact(lock);
}

// ---- AfLock writer paths ---------------------------------------------------

TEST(AfLockAbort, WriterTryFailsWhileReaderHoldsAndLockStaysAcquirable) {
    AfLock lock(4, 2, 2);
    lock.lock_shared(0);
    EXPECT_FALSE(lock.try_lock(0));
    EXPECT_FALSE(lock.try_lock_for(1, 30ms));
    // Concurrent Entering must survive the aborted writer passages.
    EXPECT_TRUE(lock.try_lock_shared(1));
    lock.unlock_shared(1);
    lock.unlock_shared(0);
    expect_lock_intact(lock);
}

TEST(AfLockAbort, WriterTryFailsWhileWriterHolds) {
    AfLock lock(2, 2, 1);
    lock.lock(0);
    EXPECT_FALSE(lock.try_lock(1));
    EXPECT_FALSE(lock.try_lock_for(1, 20ms));
    lock.unlock(0);
    expect_lock_intact(lock);
}

TEST(AfLockAbort, TimedWriterAcquiresOnceReaderLeaves) {
    AfLock lock(2, 1, 1);
    lock.lock_shared(1);
    std::atomic<bool> got{false};
    std::thread t([&] { got.store(lock.try_lock_for(0, 2s)); });
    std::this_thread::sleep_for(20ms);
    lock.unlock_shared(1);
    t.join();
    ASSERT_TRUE(got.load());
    lock.unlock(0);
    expect_lock_intact(lock);
}

TEST(AfLockAbort, AbortingReaderDoesNotStrandTheWriter) {
    // A writer blocks on a group whose only announced reader then aborts;
    // the abort's exit-section signalling must wake the writer (the
    // line 12-23 handshake), not strand it.
    AfLock lock(2, 1, 1);
    std::atomic<bool> writer_done{false};
    lock.lock_shared(0);  // C[0] = 1: the writer will have to wait.
    std::thread writer([&] {
        lock.lock(0);
        lock.unlock(0);
        writer_done.store(true);
    });
    // Let the writer reach its drain loop, then have a second reader try
    // with a short deadline (it will see WAIT or PREENTRY) and abort or
    // enter; then release the pinning reader.
    std::this_thread::sleep_for(20ms);
    if (lock.try_lock_shared_for(1, 1ms)) {
        lock.unlock_shared(1);
    }
    lock.unlock_shared(0);
    writer.join();
    EXPECT_TRUE(writer_done.load());
    expect_lock_intact(lock);
}

// ---- Timed-acquisition overshoot regression --------------------------------

// Parked timed waits carry the deadline into the kernel as an *absolute*
// timeout, so a blocked timed acquisition returns when its clock runs out --
// not when the holder eventually releases, and not quantised to backoff
// sleep slices. The holder here keeps the lock until both waiters have
// returned: a waiter that ignores its deadline while parked would deadlock
// the join (caught loudly by the CTest TIMEOUT), and the elapsed-time bound
// documents the tolerated overshoot. Bounds are generous on purpose: this
// test runs under TSan on loaded 1-core CI hosts.
TEST(AfLockAbort, TimedWaitsDoNotOvershootWhileParked) {
    using Clock = std::chrono::steady_clock;
    constexpr auto kTimeout = 60ms;
    constexpr auto kMaxOvershoot = 2s;
    AfLock lock(2, 2, 1);
    lock.lock(0);  // RSIG = WAIT and WL held: both timed paths must block.
    std::atomic<long> reader_ms{-1};
    std::atomic<long> writer_ms{-1};
    std::thread reader([&] {
        const auto t0 = Clock::now();
        EXPECT_FALSE(lock.try_lock_shared_for(0, kTimeout));
        reader_ms.store(std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now() - t0)
                            .count());
    });
    std::thread writer([&] {
        const auto t0 = Clock::now();
        EXPECT_FALSE(lock.try_lock_for(1, kTimeout));
        writer_ms.store(std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now() - t0)
                            .count());
    });
    reader.join();
    writer.join();
    lock.unlock(0);  // Only now: the waiters timed out on their own clocks.
    for (const auto& ms : {&reader_ms, &writer_ms}) {
        EXPECT_GE(ms->load(), 60);
        EXPECT_LT(ms->load(),
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      kTimeout + kMaxOvershoot)
                      .count());
    }
    expect_lock_intact(lock);
}

TEST(TournamentMutexAbort, TimedClimbDoesNotOvershootWhileParked) {
    using Clock = std::chrono::steady_clock;
    TournamentMutex mx(4);
    mx.lock(0);
    const auto t0 = Clock::now();
    EXPECT_FALSE(mx.try_lock_for(2, 60ms));
    const auto elapsed = Clock::now() - t0;
    mx.unlock(0);  // Released only after the waiter gave up by itself.
    EXPECT_GE(elapsed, 60ms);
    EXPECT_LT(elapsed, 60ms + 2s);
    for (std::uint32_t s = 0; s < 4; ++s) {
        EXPECT_TRUE(mx.try_lock(s));
        mx.unlock(s);
    }
}

// ---- Misuse detection ------------------------------------------------------

#if RWR_AF_MISUSE_CHECKS
TEST(AfLockMisuse, DoubleSharedReleaseThrowsBeforeCorruptingC) {
    AfLock lock(2, 1, 1);
    lock.lock_shared(0);
    lock.unlock_shared(0);
    EXPECT_THROW(lock.unlock_shared(0), std::logic_error);
    expect_lock_intact(lock);  // C[0] was not driven negative.
}

TEST(AfLockMisuse, UnlockWithoutHoldingWlThrows) {
    AfLock lock(2, 2, 1);
    EXPECT_THROW(lock.unlock(0), std::logic_error);
    lock.lock(0);
    EXPECT_THROW(lock.unlock(1), std::logic_error);  // Wrong writer id.
    lock.unlock(0);
    expect_lock_intact(lock);
}

TEST(AfLockMisuse, RecursiveUseOfOneIdThrows) {
    AfLock lock(2, 1, 1);
    lock.lock_shared(0);
    EXPECT_THROW(lock.lock_shared(0), std::logic_error);
    lock.unlock_shared(0);
    lock.lock(0);
    EXPECT_THROW(lock.lock(0), std::logic_error);
    lock.unlock(0);
}

TEST(AfLockMisuse, FailedTryLeavesIdReusable) {
    AfLock lock(2, 1, 1);
    lock.lock(0);
    EXPECT_FALSE(lock.try_lock_shared(0));
    EXPECT_FALSE(lock.try_lock_shared(0));  // Guard must have been released.
    lock.unlock(0);
    EXPECT_TRUE(lock.try_lock_shared(0));
    lock.unlock_shared(0);
}
#endif  // RWR_AF_MISUSE_CHECKS

TEST(CheckedLockTest, DetectsDoubleUnlockAndRecursion) {
    CheckedLock<AfLock> lock(2, 1, 1);
    lock.lock_shared(0);
    EXPECT_THROW(lock.lock_shared(0), std::logic_error);
    lock.unlock_shared(0);
    EXPECT_THROW(lock.unlock_shared(0), std::logic_error);
    lock.lock(0);
    EXPECT_THROW(lock.lock(0), std::logic_error);
    lock.unlock(0);
    EXPECT_THROW(lock.unlock(0), std::logic_error);
    EXPECT_THROW(lock.lock_shared(5), std::invalid_argument);
}

TEST(CheckedLockTest, ForwardsTryPathsAndReleasesGuardOnFailure) {
    CheckedLock<AfLock> lock(2, 1, 1);
    ASSERT_TRUE(lock.try_lock(0));
    EXPECT_FALSE(lock.try_lock_shared(0));
    EXPECT_FALSE(lock.try_lock_shared_for(0, 1ms));
    lock.unlock(0);
    EXPECT_TRUE(lock.try_lock_shared(0));
    EXPECT_FALSE(lock.try_lock_for(0, 1ms));
    lock.unlock_shared(0);
}

// ---- AfSharedMutex facade --------------------------------------------------

TEST(AfSharedMutexTimed, TryAndTimedPathsInterop) {
    AfSharedMutex mtx(4, 2);
    {
        std::unique_lock lk(mtx);
        std::thread t([&] {
            EXPECT_FALSE(mtx.try_lock_shared());
            EXPECT_FALSE(mtx.try_lock_shared_for(5ms));
            EXPECT_FALSE(mtx.try_lock());
        });
        t.join();
    }
    {
        std::shared_lock lk(mtx, std::try_to_lock);
        ASSERT_TRUE(lk.owns_lock());
        std::thread t([&] {
            EXPECT_TRUE(mtx.try_lock_shared());
            mtx.unlock_shared();
            EXPECT_FALSE(mtx.try_lock_for(5ms));
        });
        t.join();
    }
    EXPECT_TRUE(mtx.try_lock());
    mtx.unlock();
}

// ---- Watchdog --------------------------------------------------------------

TEST(WatchdogTest, DisarmedInTimeDoesNotFire) {
    StageBoard board(2);
    Watchdog::Options opts;
    opts.timeout = 5s;
    opts.dump = [&] { return board.dump(); };
    opts.on_timeout = [](const std::string&) {};
    Watchdog dog(opts);
    board.set(0, "working");
    dog.heartbeat();
    dog.disarm();
    EXPECT_FALSE(dog.fired());
}

TEST(WatchdogTest, FiresWithDumpOnMissedHeartbeats) {
    StageBoard board(2);
    board.set(0, "af.lock(writer 0) line 14");
    board.set(1, "af.lock_shared(reader 1) line 36");
    std::atomic<bool> fired{false};
    std::string report;
    std::mutex report_mu;
    Watchdog::Options opts;
    opts.timeout = 50ms;
    opts.poll = 5ms;
    opts.dump = [&] { return board.dump(); };
    opts.on_timeout = [&](const std::string& msg) {
        std::lock_guard<std::mutex> g(report_mu);
        report = msg;
        fired.store(true);
    };
    Watchdog dog(opts);
    while (!fired.load()) {
        std::this_thread::sleep_for(5ms);
    }
    dog.disarm();
    EXPECT_TRUE(dog.fired());
    std::lock_guard<std::mutex> g(report_mu);
    EXPECT_NE(report.find("line 14"), std::string::npos);
    EXPECT_NE(report.find("line 36"), std::string::npos);
}

// ---- Acceptance stress: doomed cohort aborts, survivors progress -----------

TEST(AbortStress, SurvivorsProgressWhileRandomCohortTimesOut) {
    // 3 surviving readers + 1 surviving writer must complete a fixed
    // workload while a doomed reader and a doomed writer hammer the lock
    // with tiny timeouts (aborting mid-acquisition constantly), under a
    // watchdog that turns any stranding into a diagnosed failure.
    constexpr std::uint32_t kReaders = 4, kWriters = 2;
    constexpr int kPassages = 300;
    AfLock lock(kReaders, kWriters, 2);
    StageBoard board(kReaders + kWriters);
    Watchdog::Options wopts;
    wopts.timeout = 60s;  // Generous: TSan on a 1-core box is slow.
    wopts.dump = [&] { return board.dump(); };
    Watchdog dog(wopts);

    std::atomic<bool> stop{false};
    std::atomic<int> survivor_reader_passages{0};
    std::atomic<int> survivor_writer_passages{0};
    std::atomic<long> aborts{0};
    std::int64_t guarded = 0;  // Written only under the write lock.

    std::vector<std::thread> threads;
    // Doomed reader (id 3) and doomed writer (id 1): tiny random timeouts.
    threads.emplace_back([&] {
        std::mt19937 rng(7);
        while (!stop.load()) {
            const auto timeout =
                std::chrono::microseconds(rng() % 200);
            board.set(3, "doomed reader: acquiring");
            if (lock.try_lock_shared_for(3, timeout)) {
                board.set(3, "doomed reader: cs");
                lock.unlock_shared(3);
            } else {
                aborts.fetch_add(1);
            }
            dog.heartbeat();
        }
        board.set(3, "doomed reader: done");
    });
    threads.emplace_back([&] {
        std::mt19937 rng(11);
        while (!stop.load()) {
            const auto timeout =
                std::chrono::microseconds(rng() % 200);
            board.set(kReaders + 1, "doomed writer: acquiring");
            if (lock.try_lock_for(1, timeout)) {
                board.set(kReaders + 1, "doomed writer: cs");
                ++guarded;
                lock.unlock(1);
            } else {
                aborts.fetch_add(1);
            }
            dog.heartbeat();
        }
        board.set(kReaders + 1, "doomed writer: done");
    });
    // Survivors: blocking acquisition, fixed workload.
    for (std::uint32_t r = 0; r < 3; ++r) {
        threads.emplace_back([&, r] {
            for (int i = 0; i < kPassages; ++i) {
                board.set(r, "survivor reader: acquiring");
                lock.lock_shared(r);
                board.set(r, "survivor reader: cs");
                lock.unlock_shared(r);
                survivor_reader_passages.fetch_add(1);
                dog.heartbeat();
            }
            board.set(r, "survivor reader: done");
        });
    }
    threads.emplace_back([&] {
        for (int i = 0; i < kPassages; ++i) {
            board.set(kReaders, "survivor writer: acquiring");
            lock.lock(0);
            board.set(kReaders, "survivor writer: cs");
            ++guarded;
            lock.unlock(0);
            survivor_writer_passages.fetch_add(1);
            dog.heartbeat();
        }
        board.set(kReaders, "survivor writer: done");
    });

    // Join survivors first: they must finish despite the doomed cohort.
    for (std::size_t i = 2; i < threads.size(); ++i) {
        threads[i].join();
    }
    // Uncontended acquisitions can beat even the tiny timeouts, so force at
    // least one observable abort: pin the write lock (survivor writer id 0
    // is free again) until a doomed acquisition times out against it.
    lock.lock(0);
    const long aborts_before = aborts.load();
    while (aborts.load() == aborts_before) {
        std::this_thread::sleep_for(1ms);
        dog.heartbeat();
    }
    lock.unlock(0);
    stop.store(true);
    threads[0].join();
    threads[1].join();
    dog.disarm();

    EXPECT_FALSE(dog.fired());
    EXPECT_EQ(survivor_reader_passages.load(), 3 * kPassages);
    EXPECT_EQ(survivor_writer_passages.load(), kPassages);
    // The doomed cohort really did abort mid-acquisition.
    EXPECT_GT(aborts.load(), 0);
    // And the lock still works.
    expect_lock_intact(lock);
}

}  // namespace
}  // namespace rwr::native
