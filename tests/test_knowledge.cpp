// Tests for the awareness/familiarity formalism (paper Definitions 1-3,
// Observations 1-2, Fact 1, Lemma 1).
#include <gtest/gtest.h>

#include "knowledge/awareness.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"
#include "sim/task.hpp"

namespace rwr::knowledge {
namespace {

using sim::Process;
using sim::Role;
using sim::SimTask;
using sim::System;

struct Fixture {
    System sys{Protocol::WriteThrough};
    explicit Fixture(Protocol p = Protocol::WriteThrough) : sys(p) {}
};

// --- PSet basics -------------------------------------------------------------

TEST(PSet, SetTestCount) {
    PSet s(130);
    EXPECT_TRUE(s.empty());
    s.set(0);
    s.set(64);
    s.set(129);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_TRUE(s.test(64));
    EXPECT_FALSE(s.test(63));
}

TEST(PSet, UnionAndSubset) {
    PSet a(100);
    PSet b(100);
    a.set(1);
    b.set(1);
    b.set(2);
    EXPECT_TRUE(a.subset_of(b));
    EXPECT_FALSE(b.subset_of(a));
    a |= b;
    EXPECT_TRUE(b.subset_of(a));
    EXPECT_EQ(a.count(), 2u);
}

// --- Definitions 1 & 2 worked examples ---------------------------------------

SimTask<void> single_write(Process& p, VarId v, Word val) {
    co_await p.write(v, val);
}
SimTask<void> single_read(Process& p, VarId v) { co_await p.read(v); }
SimTask<void> single_cas(Process& p, VarId v, Word exp, Word des) {
    co_await p.cas(v, exp, des);
}

TEST(Awareness, InitiallySelfOnly) {
    AwarenessTracker t(3, 2);
    for (ProcId p = 0; p < 3; ++p) {
        EXPECT_EQ(t.awareness(p).count(), 1u);
        EXPECT_TRUE(t.awareness(p).test(p));
    }
    EXPECT_TRUE(t.familiarity(VarId{0}).empty());
}

TEST(Awareness, WriteSetsFamiliarityToWriterAwareness) {
    // p0 writes v -> F(v) = AW(p0) = {p0}. p1 reads v -> AW(p1) = {p0, p1}.
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v");
    Process& p0 = sys.add_process(Role::Reader);
    Process& p1 = sys.add_process(Role::Reader);
    p0.set_task(single_write(p0, v, 1));
    p1.set_task(single_read(p1, v));
    AwarenessTracker t(2, 1);
    sys.add_observer(&t);
    sys.start_all();

    sys.step(p0.id());
    EXPECT_EQ(t.familiarity(v).count(), 1u);
    EXPECT_TRUE(t.familiarity(v).test(p0.id()));

    // p1's pending read is expanding: F(v)={p0} ⊄ AW(p1)={p1}.
    EXPECT_TRUE(t.would_expand(p1.id(), p1.pending()));
    sys.step(p1.id());
    EXPECT_TRUE(t.awareness(p1.id()).test(p0.id()));
    EXPECT_TRUE(t.awareness(p1.id()).test(p1.id()));
    EXPECT_EQ(t.expanding_steps(p1.id()), 1u);
    EXPECT_EQ(t.lemma1_violations(), 0u);
}

TEST(Awareness, TrivialWriteDoesNotChangeFamiliarity) {
    // Writing the current value is a trivial step (Definition 1 considers
    // only non-trivial steps).
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v", 7);
    Process& p0 = sys.add_process(Role::Reader);
    p0.set_task(single_write(p0, v, 7));
    AwarenessTracker t(1, 1);
    sys.add_observer(&t);
    sys.start_all();
    sys.step(p0.id());
    EXPECT_TRUE(t.familiarity(v).empty());
}

TEST(Awareness, SuccessfulCasExtendsFamiliarity) {
    // Definition 1 case 2: CAS extends rather than overwrites familiarity.
    // p0 writes v (F={p0}); p1 CAS-succeeds on v; then F(v) = {p0, p1}.
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v", 0);
    Process& p0 = sys.add_process(Role::Reader);
    Process& p1 = sys.add_process(Role::Reader);
    p0.set_task(single_write(p0, v, 5));
    p1.set_task(single_cas(p1, v, 5, 6));
    AwarenessTracker t(2, 1);
    sys.add_observer(&t);
    sys.start_all();
    sys.step(p0.id());
    sys.step(p1.id());
    EXPECT_TRUE(t.familiarity(v).test(p0.id()));
    EXPECT_TRUE(t.familiarity(v).test(p1.id()));
    // And AW(p1) grew (CAS is a reading step): Observation 2 holds --
    // F(v) == AW(p1) after p1's non-trivial CAS.
    EXPECT_TRUE(t.familiarity(v) == t.awareness(p1.id()));
}

TEST(Awareness, FailedCasStillReads) {
    // A failed CAS is trivial (familiarity unchanged) but is a reading step:
    // the executing process still becomes aware of F(v).
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v", 0);
    Process& p0 = sys.add_process(Role::Reader);
    Process& p1 = sys.add_process(Role::Reader);
    p0.set_task(single_write(p0, v, 5));
    p1.set_task(single_cas(p1, v, 99, 1));  // Will fail: v == 5.
    AwarenessTracker t(2, 1);
    sys.add_observer(&t);
    sys.start_all();
    sys.step(p0.id());
    sys.step(p1.id());
    EXPECT_TRUE(t.awareness(p1.id()).test(p0.id()));     // Read half happened.
    EXPECT_FALSE(t.familiarity(v).test(p1.id()));        // Write half didn't.
}

TEST(Awareness, OverwriteResetsFamiliarity) {
    // Definition 1 case 1: a later non-trivial *write* overwrites F(v)
    // entirely -- knowledge of earlier writers is destroyed.
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v", 0);
    Process& p0 = sys.add_process(Role::Reader);
    Process& p1 = sys.add_process(Role::Reader);
    p0.set_task(single_write(p0, v, 1));
    p1.set_task(single_write(p1, v, 2));
    AwarenessTracker t(2, 1);
    sys.add_observer(&t);
    sys.start_all();
    sys.step(p0.id());
    sys.step(p1.id());
    // p1 never read v, so AW(p1) = {p1} and F(v) = AW(p1) = {p1}: p0 gone.
    EXPECT_FALSE(t.familiarity(v).test(p0.id()));
    EXPECT_TRUE(t.familiarity(v).test(p1.id()));
}

TEST(Awareness, TransitiveInformationFlow) {
    // p0 writes a; p1 reads a then writes b; p2 reads b => p2 aware of p0.
    System sys(Protocol::WriteThrough);
    const VarId a = sys.memory().allocate("a");
    const VarId b = sys.memory().allocate("b");
    Process& p0 = sys.add_process(Role::Reader);
    Process& p1 = sys.add_process(Role::Reader);
    Process& p2 = sys.add_process(Role::Reader);
    p0.set_task(single_write(p0, a, 1));
    auto relay = [](Process& p, VarId src, VarId dst) -> SimTask<void> {
        const Word x = co_await p.read(src);
        co_await p.write(dst, x + 1);
    };
    p1.set_task(relay(p1, a, b));
    p2.set_task(single_read(p2, b));
    AwarenessTracker t(3, 2);
    sys.add_observer(&t);
    sys.start_all();
    sys.step(p0.id());
    sys.step(p1.id());
    sys.step(p1.id());
    sys.step(p2.id());
    EXPECT_TRUE(t.awareness(p2.id()).test(p0.id()));
    EXPECT_TRUE(t.awareness(p2.id()).test(p1.id()));
    EXPECT_EQ(t.awareness(p2.id()).count(), 3u);
}

TEST(Awareness, FragmentResetRebasesKnowledge) {
    System sys(Protocol::WriteThrough);
    const VarId v = sys.memory().allocate("v");
    Process& p0 = sys.add_process(Role::Reader);
    Process& p1 = sys.add_process(Role::Reader);
    p0.set_task(single_write(p0, v, 1));
    p1.set_task(single_read(p1, v));
    AwarenessTracker t(2, 1);
    sys.add_observer(&t);
    sys.start_all();
    sys.step(p0.id());
    t.reset_fragment();
    EXPECT_TRUE(t.familiarity(v).empty());
    EXPECT_EQ(t.awareness(p0.id()).count(), 1u);
    // After the reset, p1's read of v is NOT expanding (F(v) = ∅ in the new
    // fragment, even though v was written in the old one).
    EXPECT_FALSE(t.would_expand(p1.id(), p1.pending()));
}

TEST(Awareness, MonotoneWithinFragment) {
    // Observation 1: awareness sets only grow as a fragment unfolds.
    System sys(Protocol::WriteThrough);
    const VarId a = sys.memory().allocate("a");
    const VarId b = sys.memory().allocate("b");
    Process& p0 = sys.add_process(Role::Reader);
    Process& p1 = sys.add_process(Role::Reader);
    auto writer2 = [](Process& p, VarId x, VarId y) -> SimTask<void> {
        co_await p.write(x, 1);
        co_await p.write(y, 1);
    };
    auto reader2 = [](Process& p, VarId x, VarId y) -> SimTask<void> {
        co_await p.read(x);
        co_await p.read(y);
    };
    p0.set_task(writer2(p0, a, b));
    p1.set_task(reader2(p1, a, b));
    AwarenessTracker t(2, 2);
    sys.add_observer(&t);
    sys.start_all();
    std::size_t prev = t.awareness(p1.id()).count();
    sys.step(p0.id());
    sys.step(p0.id());
    for (int i = 0; i < 2; ++i) {
        sys.step(p1.id());
        EXPECT_GE(t.awareness(p1.id()).count(), prev);
        prev = t.awareness(p1.id()).count();
    }
    EXPECT_EQ(prev, 2u);
}

// --- Lemma 1 cross-check under random executions ------------------------------

SimTask<void> chatter(Process& p, std::vector<VarId> vars, int rounds,
                      std::uint64_t seed) {
    // Deterministic pseudo-random mix of reads/writes/CASes.
    std::uint64_t x = seed * 2654435761u + 1;
    for (int i = 0; i < rounds; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const VarId v = vars[(x >> 33) % vars.size()];
        switch ((x >> 13) % 3) {
            case 0:
                co_await p.read(v);
                break;
            case 1:
                co_await p.write(v, x % 5);
                break;
            default: {
                const Word cur = co_await p.read(v);
                co_await p.cas(v, cur, (cur + 1) % 5);
                break;
            }
        }
    }
}

class Lemma1Sweep : public ::testing::TestWithParam<
                        std::tuple<Protocol, std::uint64_t /*seed*/>> {};

TEST_P(Lemma1Sweep, ExpandingStepsAlwaysIncurRmrs) {
    const auto [proto, seed] = GetParam();
    System sys(proto);
    std::vector<VarId> vars;
    for (int i = 0; i < 4; ++i) {
        vars.push_back(sys.memory().allocate("v" + std::to_string(i)));
    }
    constexpr int kProcs = 5;
    for (int i = 0; i < kProcs; ++i) {
        Process& p = sys.add_process(Role::Reader);
        p.set_task(chatter(p, vars, 60, seed + i));
    }
    AwarenessTracker t(kProcs, vars.size());
    sys.add_observer(&t);
    sim::RandomScheduler sched(seed ^ 0x9e3779b97f4a7c15ULL);
    const auto result = sim::run(sys, sched, 100'000);
    ASSERT_TRUE(result.all_finished);
    EXPECT_EQ(t.lemma1_violations(), 0u);
    EXPECT_GT(t.total_expanding_steps(), 0u);

    // Also exercise mid-run fragment rebasing: replay with a reset halfway.
    System sys2(proto);
    std::vector<VarId> vars2;
    for (int i = 0; i < 4; ++i) {
        vars2.push_back(sys2.memory().allocate("v" + std::to_string(i)));
    }
    for (int i = 0; i < kProcs; ++i) {
        Process& p = sys2.add_process(Role::Reader);
        p.set_task(chatter(p, vars2, 60, seed + i));
    }
    AwarenessTracker t2(kProcs, vars2.size());
    sys2.add_observer(&t2);
    sim::RandomScheduler sched2(seed ^ 0x9e3779b97f4a7c15ULL);
    sim::run(sys2, sched2, 70);  // Partial run...
    t2.reset_fragment();         // ...rebase (caches keep their state!)...
    sim::run(sys2, sched2, 100'000);  // ...continue.
    EXPECT_EQ(t2.lemma1_violations(), 0u);  // Lemma 1 holds per fragment.
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsManySeeds, Lemma1Sweep,
    ::testing::Combine(::testing::Values(Protocol::WriteThrough,
                                         Protocol::WriteBack),
                       ::testing::Range<std::uint64_t>(0, 12)));

}  // namespace
}  // namespace rwr::knowledge
