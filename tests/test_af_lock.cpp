// Correctness tests for the A_f reader-writer lock family (Algorithm 1):
// Mutual Exclusion (random sweeps + exhaustive small-schedule search),
// Deadlock Freedom, Bounded Exit, Concurrent Entering, reader starvation
// freedom, writer starvation demonstration, and RMR sanity.
#include <gtest/gtest.h>

#include <bit>
#include <memory>

#include "core/af_lock_sim.hpp"
#include "harness/experiment.hpp"
#include "sim/explorer.hpp"

namespace rwr::core {
namespace {

using harness::ExperimentConfig;
using harness::LockKind;
using harness::run_experiment;
using harness::SchedKind;
using sim::Process;
using sim::Role;
using sim::SimTask;
using sim::System;

TEST(AfLock, ParamsValidation) {
    System sys(Protocol::WriteBack);
    AfParams bad;
    bad.n = 4;
    bad.m = 1;
    bad.f = 5;  // f > n.
    EXPECT_THROW(AfSimLock(sys.memory(), bad), std::invalid_argument);
}

TEST(AfLock, GroupAssignment) {
    // n=10, f=3 -> K=ceil(10/3)=4; groups: {0..3}, {4..7}, {8..9}.
    System sys(Protocol::WriteBack);
    AfParams params{.n = 10, .m = 1, .f = 3};
    AfSimLock lock(sys.memory(), params);
    EXPECT_EQ(params.group_size(), 4u);
    EXPECT_EQ(lock.group_of(0), 0u);
    EXPECT_EQ(lock.group_of(3), 0u);
    EXPECT_EQ(lock.group_of(4), 1u);
    EXPECT_EQ(lock.group_of(9), 2u);
    EXPECT_EQ(lock.slot_of(9), 1u);
}

TEST(AfLock, SoloReaderPassage) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.n = 1;
    cfg.m = 1;
    cfg.f = 1;
    cfg.passages = 3;
    cfg.sched = SchedKind::RoundRobin;
    const auto res = run_experiment(cfg);
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.me_violations, 0u);
    EXPECT_EQ(res.readers.num_passages, 3u);
}

TEST(AfLock, SoloWriterPassage) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.n = 2;
    cfg.m = 1;
    cfg.f = 1;
    cfg.passages = 1;
    cfg.sched = SchedKind::RoundRobin;
    const auto res = run_experiment(cfg);
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.writers.num_passages, 1u);
    EXPECT_EQ(res.me_violations, 0u);
}

class AfSweep : public ::testing::TestWithParam<
                    std::tuple<Protocol, std::uint32_t /*n*/,
                               std::uint32_t /*m*/, std::uint32_t /*f*/,
                               std::uint64_t /*seed*/>> {};

TEST_P(AfSweep, MutualExclusionAndProgress) {
    const auto [proto, n, m, f, seed] = GetParam();
    if (f > n) {
        GTEST_SKIP() << "f > n is not a valid parameterization";
    }
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.protocol = proto;
    cfg.n = n;
    cfg.m = m;
    cfg.f = f;
    cfg.passages = 4;
    cfg.cs_steps = 2;
    cfg.seed = seed;
    const auto res = run_experiment(cfg);
    EXPECT_TRUE(res.finished) << "deadlock/livelock suspected";
    EXPECT_EQ(res.me_violations, 0u);
    EXPECT_EQ(res.readers.num_passages, static_cast<std::uint64_t>(n) * 4);
    EXPECT_EQ(res.writers.num_passages, static_cast<std::uint64_t>(m) * 4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AfSweep,
    ::testing::Combine(::testing::Values(Protocol::WriteThrough,
                                         Protocol::WriteBack),
                       ::testing::Values(1u, 2u, 5u, 8u),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Range<std::uint64_t>(0, 4)));

TEST(AfLock, ExhaustiveSmallSchedules_N2M1F1) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.protocol = Protocol::WriteThrough;
    cfg.n = 2;
    cfg.m = 1;
    cfg.f = 1;
    cfg.passages = 1;
    const auto res =
        sim::explore_dfs(harness::scenario_factory(cfg), 12, 100'000);
    EXPECT_EQ(res.violations, 0u) << res.first_violation;
    EXPECT_EQ(res.incomplete_runs, 0u);
    EXPECT_EQ(res.truncated_runs, 0u);
    EXPECT_GT(res.schedules_explored, 500u);
}

TEST(AfLock, ExhaustiveSmallSchedules_N2M1F2) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.protocol = Protocol::WriteBack;
    cfg.n = 2;
    cfg.m = 1;
    cfg.f = 2;  // Two singleton groups.
    cfg.passages = 1;
    const auto res =
        sim::explore_dfs(harness::scenario_factory(cfg), 12, 100'000);
    EXPECT_EQ(res.violations, 0u) << res.first_violation;
    EXPECT_EQ(res.incomplete_runs, 0u);
    EXPECT_EQ(res.truncated_runs, 0u);
}

TEST(AfLock, ExhaustiveSmallSchedules_N1M2) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.protocol = Protocol::WriteThrough;
    cfg.n = 1;
    cfg.m = 2;
    cfg.f = 1;
    cfg.passages = 1;
    const auto res =
        sim::explore_dfs(harness::scenario_factory(cfg), 12, 100'000);
    EXPECT_EQ(res.violations, 0u) << res.first_violation;
    EXPECT_EQ(res.incomplete_runs, 0u);
    EXPECT_EQ(res.truncated_runs, 0u);
}

TEST(AfLock, RandomizedDeepSchedules) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.protocol = Protocol::WriteBack;
    cfg.n = 3;
    cfg.m = 2;
    cfg.f = 2;
    cfg.passages = 3;
    const auto res = sim::explore_random(harness::scenario_factory(cfg),
                                         300, /*seed=*/42, 2'000'000);
    EXPECT_EQ(res.violations, 0u) << res.first_violation;
    EXPECT_EQ(res.incomplete_runs, 0u);
    EXPECT_EQ(res.truncated_runs, 0u);
}

TEST(AfLock, ReadersShareTheCriticalSection) {
    // The whole point of an RW lock: with a long CS and many readers, the
    // checker must observe genuine reader concurrency.
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.n = 6;
    cfg.m = 1;
    cfg.f = 2;
    cfg.passages = 5;
    cfg.cs_steps = 8;
    cfg.seed = 3;
    const auto res = run_experiment(cfg);
    EXPECT_TRUE(res.finished);
    EXPECT_GE(res.max_concurrent_readers, 3u);
}

TEST(AfLock, ConcurrentEnteringStepsBounded) {
    // Paper Section 2.1: with all writers in the remainder section, a
    // reader's entry completes within b of its own steps. A_f's entry is
    // wait-free when no writer signals WAIT: counter add (<= 2 refreshes
    // per level) + one RSIG read. We verify the max entry steps over a
    // heavily contended reader-only run is within the deterministic bound.
    for (const std::uint32_t n : {4u, 16u, 64u}) {
        ExperimentConfig cfg;
        cfg.lock = LockKind::Af;
        cfg.n = n;
        cfg.m = 1;  // Writer present but performs 0 passages... we model
                    // this by making everyone run, then only checking
                    // readers in a separate writer-free config below.
        cfg.f = 1;
        cfg.passages = 3;
        cfg.seed = 17;
        // Writer-free variant: m must be >= 1 for the lock, so give the
        // writer zero work by setting passages per-process uniformly and
        // running a custom scenario instead.
        sim::System sys(Protocol::WriteBack);
        AfParams params{.n = n, .m = 1, .f = 1};
        AfSimLock lock(sys.memory(), params);
        auto records =
            std::make_unique<std::vector<std::vector<sim::PassageRecord>>>(n);
        for (std::uint32_t r = 0; r < n; ++r) {
            sim::Process& p = sys.add_process(Role::Reader);
            sim::DriveConfig dc;
            dc.passages = 3;
            dc.records = &(*records)[r];
            p.set_task(sim::drive_passages(lock, p, dc));
        }
        sim::RandomScheduler sched(5);
        ASSERT_TRUE(sim::run(sys, sched, 50'000'000).all_finished);

        const std::uint32_t K = params.group_size();
        const auto levels = static_cast<std::uint64_t>(std::bit_width(
                                std::bit_ceil(K)) - 1);
        // add: 2 leaf steps + 2 refreshes x 4 steps per level; +1 RSIG read.
        const std::uint64_t bound = 2 + 2 * 4 * levels + 1;
        for (const auto& recs : *records) {
            for (const auto& rec : recs) {
                EXPECT_LE(rec.delta.steps_in(Section::Entry), bound);
            }
        }
    }
}

TEST(AfLock, BoundedExit) {
    // Bounded Exit: reader and writer exits complete within a deterministic
    // number of own steps regardless of scheduling (no waiting in exit).
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.n = 8;
    cfg.m = 2;
    cfg.f = 2;
    cfg.passages = 4;
    cfg.seed = 11;
    const auto res = run_experiment(cfg);
    ASSERT_TRUE(res.finished);
    const std::uint32_t K = (8 + 1) / 2;  // ceil(8/2)=4.
    const auto levels =
        static_cast<std::uint64_t>(std::bit_width(std::bit_ceil(K)) - 1);
    // Reader exit: C.add (2 + 8*levels) + RSIG read + worst helper
    // (2 counter reads + CAS) or PREENTRY path (read + CAS).
    const std::uint64_t reader_bound = (2 + 8 * levels) + 1 + 3;
    EXPECT_LE(res.readers.max_steps[static_cast<int>(Section::Exit)],
              reader_bound);
    // Writer exit: read WSEQ + write WSEQ + write RSIG + WL exit (1/level).
    const std::uint64_t writer_bound = 3 + 8;
    EXPECT_LE(res.writers.max_steps[static_cast<int>(Section::Exit)],
              writer_bound);
}

TEST(AfLock, NoReaderStarvationUnderFairSchedules) {
    // Lemma 16: readers never starve. Under fair random scheduling with
    // writers continuously cycling, every reader finishes its passages.
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.n = 6;
    cfg.m = 3;
    cfg.f = 3;
    cfg.passages = 8;
    cfg.seed = 23;
    const auto res = run_experiment(cfg);
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.readers.num_passages, 48u);
}

SimTask<void> overlapping_reader(sim::SimRWLock& lock, Process& p,
                                 std::uint64_t passages) {
    for (std::uint64_t k = 0; k < passages; ++k) {
        p.set_section(Section::Entry);
        co_await lock.reader_entry(p);
        p.set_section(Section::Critical);
        co_await p.local_step();
        p.set_section(Section::Exit);
        co_await lock.reader_exit(p);
        p.set_section(Section::Remainder);
        p.note_passage_complete();
        // Observable remainder pause, so the test's scheduler can detect
        // the section boundary before the next passage begins.
        co_await p.local_step();
    }
}

TEST(AfLock, WriterCanStarveUnderReaderFlood) {
    // Paper Section 6: "Writers, however, may starve if there are always
    // readers performing passages." We build the adversarial alternation:
    // two readers in one group overlap so C[0] never reaches 0 while the
    // writer sits in its PREENTRY loop.
    sim::System sys(Protocol::WriteBack);
    AfParams params{.n = 2, .m = 1, .f = 1};
    AfSimLock lock(sys.memory(), params);
    Process& r0 = sys.add_process(Role::Reader);
    Process& r1 = sys.add_process(Role::Reader);
    Process& w = sys.add_process(Role::Writer);
    r0.set_task(overlapping_reader(lock, r0, 1'000'000));
    r1.set_task(overlapping_reader(lock, r1, 1'000'000));
    sim::DriveConfig dc;
    dc.passages = 1;
    w.set_task(sim::drive_passages(lock, w, dc));
    sys.start_all();

    // Alternate readers so that at every instant at least one of them is
    // inside a passage (C[0] > 0); give the writer a step regularly.
    auto run_reader_until_cs = [&](Process& r) {
        int guard = 0;
        while (!r.in_cs() && guard++ < 10'000) {
            sys.step(r.id());
        }
        ASSERT_TRUE(r.in_cs());
    };
    auto run_reader_until_remainder = [&](Process& r) {
        int guard = 0;
        while (r.section() != Section::Remainder && guard++ < 10'000) {
            sys.step(r.id());
        }
        ASSERT_EQ(r.section(), Section::Remainder);
    };
    run_reader_until_cs(r0);
    for (int round = 0; round < 200; ++round) {
        run_reader_until_cs(r1);   // Overlap established...
        run_reader_until_remainder(r0);  // ...now r0 may leave.
        for (int i = 0; i < 5; ++i) {
            sys.step(w.id());  // Writer spins in its entry section.
        }
        run_reader_until_cs(r0);
        run_reader_until_remainder(r1);
        for (int i = 0; i < 5; ++i) {
            sys.step(w.id());
        }
    }
    EXPECT_EQ(w.completed_passages(), 0u);
    EXPECT_EQ(w.section(), Section::Entry) << "writer should still be stuck";
    EXPECT_GE(r0.completed_passages() + r1.completed_passages(), 100u);
}

TEST(AfLock, WriterRmrGrowsWithF_ReaderRmrShrinksWithF) {
    // Directional sanity for Theorem 18 (full curves in bench_tradeoff):
    // with n fixed, raising f must raise writer passage RMRs and lower
    // reader passage RMRs.
    constexpr std::uint32_t n = 64;
    double writer_low_f = 0, writer_high_f = 0;
    double reader_low_f = 0, reader_high_f = 0;
    for (const std::uint32_t f : {1u, 64u}) {
        ExperimentConfig cfg;
        cfg.lock = LockKind::Af;
        cfg.n = n;
        cfg.m = 1;
        cfg.f = f;
        cfg.passages = 2;
        cfg.sched = SchedKind::RoundRobin;
        const auto res = run_experiment(cfg);
        ASSERT_TRUE(res.finished);
        if (f == 1) {
            writer_low_f = res.writers.mean_passage_rmrs;
            reader_low_f = res.readers.mean_passage_rmrs;
        } else {
            writer_high_f = res.writers.mean_passage_rmrs;
            reader_high_f = res.readers.mean_passage_rmrs;
        }
    }
    EXPECT_GT(writer_high_f, 4.0 * writer_low_f);
    EXPECT_GT(reader_low_f, 1.5 * reader_high_f);
}

}  // namespace
}  // namespace rwr::core
