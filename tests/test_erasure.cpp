// Tests for the executable erasure lemma (Lemma 3): awareness-closed
// removal of any process from any recorded execution must leave a legal
// execution (all responses unchanged on replay), across random workloads
// and real lock executions; and the legality checker must CATCH removals
// that are not awareness-closed.
#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hpp"
#include "harness/locks.hpp"
#include "knowledge/erasure.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace rwr::knowledge {
namespace {

using sim::Process;
using sim::Role;
using sim::SimTask;
using sim::System;

SimTask<void> chatter(Process& p, std::vector<VarId> vars, int rounds,
                      std::uint64_t seed) {
    std::uint64_t x = seed * 2654435761u + 1;
    for (int i = 0; i < rounds; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        const VarId v = vars[(x >> 33) % vars.size()];
        switch ((x >> 13) % 4) {
            case 0:
                co_await p.read(v);
                break;
            case 1:
                co_await p.write(v, (x >> 5) % 7);
                break;
            case 2: {
                const Word cur = co_await p.read(v);
                co_await p.cas(v, cur, (cur + 1) % 7);
                break;
            }
            default: {
                const Word cur = co_await p.read(v);
                co_await p.cas(v, cur + 1, 0);  // Usually fails (trivial).
                break;
            }
        }
    }
}

struct RecordedRun {
    std::vector<Word> initial;
    std::vector<sim::TraceStep> steps;
    std::size_t num_processes;
};

RecordedRun record_chatter(Protocol proto, std::uint64_t seed, int procs,
                           int rounds) {
    System sys(proto);
    std::vector<VarId> vars;
    for (int i = 0; i < 5; ++i) {
        vars.push_back(sys.memory().allocate("v" + std::to_string(i)));
    }
    for (int i = 0; i < procs; ++i) {
        Process& p = sys.add_process(Role::Reader);
        p.set_task(chatter(p, vars, rounds, seed * 31 + i));
    }
    sim::TraceRecorder rec(sys.memory());
    sys.add_observer(&rec);
    sim::RandomScheduler sched(seed ^ 0xabcdef);
    sim::run(sys, sched, 1'000'000);
    return {rec.initial_values(), rec.steps(),
            static_cast<std::size_t>(procs)};
}

class ErasureSweep
    : public ::testing::TestWithParam<std::tuple<Protocol, std::uint64_t>> {
};

TEST_P(ErasureSweep, AwarenessClosedErasureIsAlwaysLegal) {
    const auto [proto, seed] = GetParam();
    const auto run = record_chatter(proto, seed, 5, 40);
    ASSERT_GT(run.steps.size(), 100u);
    for (ProcId q = 0; q < run.num_processes; ++q) {
        const auto res =
            erase_and_replay(run.initial, run.steps, q, run.num_processes);
        EXPECT_TRUE(res.legal) << "erasing P" << q << ": " << res.detail;
        EXPECT_GT(res.removed, 0u);  // q's own steps at minimum.
        EXPECT_EQ(res.kept + res.removed, run.steps.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ErasureSweep,
    ::testing::Combine(::testing::Values(Protocol::WriteThrough,
                                         Protocol::WriteBack),
                       ::testing::Range<std::uint64_t>(0, 10)));

TEST(Erasure, CheckerCatchesNonClosedRemovals) {
    // Remove a random non-awareness-closed subset: with contending CAS
    // increments every step matters, so the replay must detect illegality
    // for at least some seeds (the checker is not vacuous).
    int caught = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        const auto run = record_chatter(Protocol::WriteBack, seed, 4, 30);
        // Remove exactly one non-trivial write-type step (keep all else).
        std::vector<std::size_t> kept;
        bool removed_one = false;
        for (std::size_t i = 0; i < run.steps.size(); ++i) {
            if (!removed_one && run.steps[i].res.nontrivial &&
                i > run.steps.size() / 3) {
                removed_one = true;
                continue;
            }
            kept.push_back(i);
        }
        ASSERT_TRUE(removed_one);
        const auto res = replay(run.initial, run.steps, kept);
        caught += res.legal ? 0 : 1;
    }
    EXPECT_GT(caught, 15) << "removing a single non-trivial step almost "
                             "always breaks replay legality";
}

TEST(Erasure, LockExecutionsAreErasable) {
    // Lemma 3 applied where the paper applies it: to executions of a
    // reader-writer lock. Record full contended executions of every lock
    // and erase each reader in turn.
    for (const harness::LockKind kind :
         {harness::LockKind::Af, harness::LockKind::Centralized,
          harness::LockKind::Faa}) {
        System sys(Protocol::WriteBack);
        auto lock = harness::make_sim_lock(kind, sys.memory(), 4, 1, 2);
        for (int r = 0; r < 4; ++r) {
            Process& p = sys.add_process(Role::Reader);
            sim::DriveConfig dc;
            dc.passages = 2;
            p.set_task(sim::drive_passages(*lock, p, dc));
        }
        Process& w = sys.add_process(Role::Writer);
        sim::DriveConfig dc;
        dc.passages = 2;
        w.set_task(sim::drive_passages(*lock, w, dc));

        sim::TraceRecorder rec(sys.memory());
        sys.add_observer(&rec);
        sim::RandomScheduler sched(7);
        ASSERT_TRUE(sim::run(sys, sched, 5'000'000).all_finished);

        for (ProcId q = 0; q < 5; ++q) {
            const auto res =
                erase_and_replay(rec.initial_values(), rec.steps(), q, 5);
            EXPECT_TRUE(res.legal)
                << harness::to_string(kind) << " erasing P" << q << ": "
                << res.detail;
        }
    }
}

TEST(Erasure, EmptyAndTrivialTraces) {
    std::vector<sim::TraceStep> empty;
    const auto res = erase_and_replay({}, empty, 0, 3);
    EXPECT_TRUE(res.legal);
    EXPECT_EQ(res.kept, 0u);
}

}  // namespace
}  // namespace rwr::knowledge
