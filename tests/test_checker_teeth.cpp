// Negative controls: the verification machinery must CATCH broken locks.
// Each BrokenLock variant plants a classic bug; the explorer / checkers
// must flag it. If these tests fail, the green lights elsewhere mean
// nothing.
#include <gtest/gtest.h>

#include <memory>

#include "sim/checker.hpp"
#include "sim/explorer.hpp"
#include "sim/rwlock.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace rwr::sim {
namespace {

/// Bug #1: readers don't synchronize with writers at all.
class NoReaderWaitLock final : public SimRWLock {
   public:
    explicit NoReaderWaitLock(Memory& mem)
        : state_(mem.allocate("broken.state", 0)) {}

    SimTask<void> reader_entry(Process& p) override {
        co_await p.read(state_);  // Looks, never waits.
    }
    SimTask<void> reader_exit(Process& p) override {
        co_await p.read(state_);
    }
    SimTask<void> writer_entry(Process& p) override {
        for (;;) {
            const Word prior = co_await p.cas(state_, 0, 1);
            if (prior == 0) {
                co_return;  // Excludes other writers, ignores readers.
            }
        }
    }
    SimTask<void> writer_exit(Process& p) override {
        co_await p.write(state_, 0);
    }
    [[nodiscard]] std::string name() const override { return "broken-1"; }

   private:
    VarId state_;
};

/// Bug #2: the writer checks the reader count non-atomically and without a
/// wait phase: a reader arriving between check and acquire slips in (a
/// time-of-check/time-of-use race).
class TocTouLock final : public SimRWLock {
   public:
    explicit TocTouLock(Memory& mem)
        : readers_(mem.allocate("toctou.readers", 0)),
          wlock_(mem.allocate("toctou.wlock", 0)) {}

    SimTask<void> reader_entry(Process& p) override {
        // Readers do wait for an active writer...
        for (;;) {
            const Word w = co_await p.read(wlock_);
            if (w == 0) {
                break;
            }
        }
        // ...but increment only after the check: racy against the writer.
        for (;;) {
            const Word c = co_await p.read(readers_);
            const Word prior = co_await p.cas(readers_, c, c + 1);
            if (prior == c) {
                co_return;
            }
        }
    }
    SimTask<void> reader_exit(Process& p) override {
        for (;;) {
            const Word c = co_await p.read(readers_);
            const Word prior = co_await p.cas(readers_, c, c - 1);
            if (prior == c) {
                co_return;
            }
        }
    }
    SimTask<void> writer_entry(Process& p) override {
        for (;;) {
            const Word prior = co_await p.cas(wlock_, 0, 1);
            if (prior == 0) {
                break;
            }
        }
        // Single drain check, no re-verification: broken.
        co_await p.read(readers_);
    }
    SimTask<void> writer_exit(Process& p) override {
        co_await p.write(wlock_, 0);
    }
    [[nodiscard]] std::string name() const override { return "broken-2"; }

   private:
    VarId readers_;
    VarId wlock_;
};

template <typename LockT>
ScenarioFactory broken_factory(std::uint32_t n, std::uint32_t m) {
    return [n, m]() {
        Scenario sc;
        sc.sys = std::make_unique<System>(Protocol::WriteBack);
        auto lock = std::make_unique<LockT>(sc.sys->memory());
        for (std::uint32_t r = 0; r < n; ++r) {
            Process& p = sc.sys->add_process(Role::Reader);
            DriveConfig dc;
            dc.passages = 2;
            dc.cs_steps = 2;
            p.set_task(drive_passages(*lock, p, dc));
        }
        for (std::uint32_t w = 0; w < m; ++w) {
            Process& p = sc.sys->add_process(Role::Writer);
            DriveConfig dc;
            dc.passages = 2;
            dc.cs_steps = 2;
            p.set_task(drive_passages(*lock, p, dc));
        }
        sc.checker =
            std::make_unique<MutualExclusionChecker>(/*throw=*/true);
        sc.sys->add_observer(sc.checker.get());
        sc.lock = std::move(lock);
        return sc;
    };
}

TEST(CheckerTeeth, ExplorerFindsTheNoWaitBug) {
    const auto res =
        explore_dfs(broken_factory<NoReaderWaitLock>(1, 1), 10, 10'000);
    EXPECT_GT(res.violations, 0u)
        << "a lock whose readers ignore writers must be caught";
}

TEST(CheckerTeeth, ExplorerFindsTheTocTouBug) {
    const auto res =
        explore_dfs(broken_factory<TocTouLock>(2, 1), 12, 10'000);
    EXPECT_GT(res.violations, 0u)
        << "the time-of-check/time-of-use race must be caught";
}

TEST(CheckerTeeth, RandomSchedulesFindTheBugsToo) {
    const auto r1 = explore_random(broken_factory<NoReaderWaitLock>(2, 1),
                                   200, 5, 50'000);
    EXPECT_GT(r1.violations, 0u);
    const auto r2 =
        explore_random(broken_factory<TocTouLock>(2, 1), 200, 5, 50'000);
    EXPECT_GT(r2.violations, 0u);
}

}  // namespace
}  // namespace rwr::sim
