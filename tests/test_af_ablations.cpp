// Ablation tests: removing either of Algorithm 1's handshake mechanisms
// must produce a DETECTABLE failure -- demonstrating that the paper's
// PREENTRY phase and exit-section helping are load-bearing, and that our
// verification machinery can tell.
#include <gtest/gtest.h>

#include <memory>

#include "core/af_ablations.hpp"
#include "core/af_lock_sim.hpp"
#include "sim/checker.hpp"
#include "sim/explorer.hpp"
#include "sim/scheduler.hpp"

namespace rwr::core {
namespace {

using sim::Process;
using sim::Role;

sim::ScenarioFactory ablated_factory(AfAblation ablation, std::uint32_t n,
                                     std::uint32_t m, std::uint32_t f,
                                     std::uint64_t passages) {
    return [=]() {
        sim::Scenario sc;
        sc.sys = std::make_unique<sim::System>(Protocol::WriteBack);
        AfParams params{.n = n, .m = m, .f = f};
        auto lock = std::make_unique<AblatedAfSimLock>(sc.sys->memory(),
                                                       params, ablation);
        for (std::uint32_t r = 0; r < n; ++r) {
            Process& p = sc.sys->add_process(Role::Reader);
            sim::DriveConfig dc;
            dc.passages = passages;
            dc.cs_steps = 2;
            p.set_task(sim::drive_passages(*lock, p, dc));
        }
        for (std::uint32_t w = 0; w < m; ++w) {
            Process& p = sc.sys->add_process(Role::Writer);
            sim::DriveConfig dc;
            dc.passages = passages;
            dc.cs_steps = 2;
            p.set_task(sim::drive_passages(*lock, p, dc));
        }
        sc.checker = std::make_unique<sim::MutualExclusionChecker>(true);
        sc.sys->add_observer(sc.checker.get());
        sc.lock = std::move(lock);
        return sc;
    };
}

TEST(AfAblations, NoExitHelpDeadlocksTheWriter) {
    // Without lines 41-48 a writer that observed C[i] > 0 is never
    // signalled: runs stop finishing (writer spins forever at line 14/21).
    const auto res = sim::explore_random(
        ablated_factory(AfAblation::NoExitHelp, 2, 1, 1, 1), 100, 3,
        200'000);
    EXPECT_EQ(res.violations, 0u);  // ME still holds...
    EXPECT_GT(res.incomplete_runs, 20u)
        << "...but most runs must deadlock without exit helping";
}

TEST(AfAblations, NoPreentryBreaksMutualExclusion_Directed) {
    // The exact interleaving Lemma 11 rules out for the full algorithm,
    // constructed deterministically against the ablated one:
    //   1. Writer passage 0 arms WAIT; reader R parks at line 36.
    //   2. Writer exits and immediately starts passage 1; WITHOUT the
    //      PREENTRY drain it re-arms WAIT while R is still waking.
    //   3. R breaks its spin (RSIG changed) but pauses BEFORE its
    //      W[i].add(-1): R is still counted in W.
    //   4. Fresh reader R2 arrives, sees WAIT, increments W, and its
    //      HelpWCS observes C == W (R double-counted): it signals CS.
    //   5. The writer enters the CS; R then finishes entry and joins it.
    sim::System sys(Protocol::WriteBack);
    AfParams params{.n = 2, .m = 1, .f = 1};
    auto lock = std::make_unique<AblatedAfSimLock>(sys.memory(), params,
                                                   AfAblation::NoPreentry);
    sim::MutualExclusionChecker checker(/*throw_on_violation=*/false);
    sys.add_observer(&checker);

    Process& r = sys.add_process(Role::Reader);
    Process& r2 = sys.add_process(Role::Reader);
    Process& w = sys.add_process(Role::Writer);
    for (Process* p : {&r, &r2, &w}) {
        sim::DriveConfig dc;
        dc.passages = 2;
        dc.cs_steps = 2;
        p->set_task(sim::drive_passages(*lock, *p, dc));
    }
    sys.start_all();
    const VarId rsig = lock->rsig_var();

    // 1. Writer solo into the CS (arms <0, WAIT> on the way).
    sim::run_solo(sys, w.id(), 10'000,
                  [](const Process& p) { return p.in_cs(); });
    ASSERT_TRUE(w.in_cs());
    // R arrives, reads <0, WAIT> at line 32, increments W, helps, and
    // parks at the line-36 spin -- which is R's SECOND read of RSIG.
    int rsig_reads = 0;
    for (int i = 0; i < 200 && r.runnable(); ++i) {
        const bool at_rsig = r.pending().code == OpCode::Read &&
                             r.pending().var == rsig;
        if (at_rsig && rsig_reads >= 1) {
            break;  // Parked at the line-36 spin, still counted in W.
        }
        rsig_reads += at_rsig ? 1 : 0;
        sys.step(r.id());
    }
    ASSERT_EQ(rsig_reads, 1);
    // 2. Writer exits passage 0 and runs passage 1's entry up to its WSIG
    //    drain spin: step until RSIG holds <1, WAIT>.
    for (int i = 0; i < 400; ++i) {
        const Word cur = sys.memory().peek(rsig);
        if (core::sig_rs_op(cur) == RsOp::Wait &&
            core::sig_seq(cur) == 1) {
            break;
        }
        sys.step(w.id());
    }
    // 3. R wakes: step it until it LEAVES the RSIG spin, then stop.
    for (int i = 0; i < 200 && r.runnable(); ++i) {
        const bool at_spin = r.pending().code == OpCode::Read &&
                             r.pending().var == rsig;
        if (!at_spin) {
            break;  // Next op is the W[i].add(-1) leaf access: pause here.
        }
        sys.step(r.id());
    }
    // 4. R2 runs its whole entry (its HelpWCS double-counts R).
    sim::run_solo(sys, r2.id(), 10'000, [](const Process& p) {
        return p.in_cs() || p.section() == Section::Remainder;
    });
    // 5. Writer drains its spin; R completes its entry.
    sim::run_solo(sys, w.id(), 10'000,
                  [](const Process& p) { return p.in_cs(); });
    sim::run_solo(sys, r.id(), 10'000,
                  [](const Process& p) { return p.in_cs(); });

    EXPECT_TRUE(w.in_cs());
    EXPECT_TRUE(r.in_cs());
    // The checker samples at step boundaries; take one step inside the
    // overlapping critical sections so it observes the violation.
    sys.step(r.id());
    EXPECT_GT(checker.violations(), 0u)
        << "the PREENTRY-less writer shared the CS with reader R -- if "
           "this ever stops reproducing, the ablation (or checker) broke";
}

TEST(AfAblations, FullAlgorithmSurvivesTheSameHunt) {
    // Control: the complete A_f passes the exact same schedule hunt that
    // kills the ablations.
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        sim::Scenario sc;
        sc.sys = std::make_unique<sim::System>(Protocol::WriteBack);
        AfParams params{.n = 3, .m = 1, .f = 1};
        auto lock = std::make_unique<AfSimLock>(sc.sys->memory(), params);
        for (std::uint32_t r = 0; r < 3; ++r) {
            Process& p = sc.sys->add_process(Role::Reader);
            sim::DriveConfig dc;
            dc.passages = 3;
            dc.cs_steps = 2;
            p.set_task(sim::drive_passages(*lock, p, dc));
        }
        Process& w = sc.sys->add_process(Role::Writer);
        sim::DriveConfig dc;
        dc.passages = 3;
        dc.cs_steps = 2;
        w.set_task(sim::drive_passages(*lock, w, dc));
        sim::MutualExclusionChecker checker(true);
        sc.sys->add_observer(&checker);

        sim::PctScheduler pct(seed, 4, 5, 600);
        sim::run(*sc.sys, pct, 3'000);
        sim::RandomScheduler rnd(seed * 31 + 7);
        const auto r = sim::run(*sc.sys, rnd, 2'000'000);
        sc.sys->check_failures();
        ASSERT_TRUE(r.all_finished) << "seed " << seed;
        ASSERT_EQ(checker.violations(), 0u);
    }
}

}  // namespace
}  // namespace rwr::core
