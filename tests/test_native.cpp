// Multi-threaded stress tests for the native (std::atomic) implementations:
// f-array counter, tournament mutex, AfLock (all f choices), baselines, and
// the AfSharedMutex facade with std::shared_lock / std::unique_lock.
//
// This host may have a single core; thread counts and iteration budgets are
// sized so the suite stays fast while still forcing real interleavings via
// yields in every spin loop.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "native/af_lock.hpp"
#include "native/baselines.hpp"
#include "native/counter.hpp"
#include "native/mutex.hpp"
#include "native/shared_mutex.hpp"

namespace rwr::native {
namespace {

TEST(NativeCounter, Sequential) {
    FArrayCounter c(4);
    c.add(0, 5);
    c.add(1, -2);
    c.add(3, 10);
    EXPECT_EQ(c.read(), 13);
}

TEST(NativeCounter, CapacityOne) {
    FArrayCounter c(1);
    c.add(0, 7);
    EXPECT_EQ(c.read(), 7);
}

TEST(NativeCounter, ConcurrentAdds) {
    constexpr std::uint32_t kThreads = 4;
    constexpr int kIters = 5000;
    FArrayCounter c(kThreads);
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c, t] {
            for (int i = 0; i < kIters; ++i) {
                c.add(t, +1);
                if (i % 3 == 0) {
                    c.add(t, -1);
                }
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    std::int64_t expected = 0;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
        expected += kIters - (kIters + 2) / 3;
    }
    EXPECT_EQ(c.read(), expected);
}

TEST(NativeCounter, ReadNeverExceedsStartedAdds) {
    // Sample reads concurrently with unit increments: values must stay
    // within [0, total].
    FArrayCounter c(3);
    std::atomic<bool> stop{false};
    std::atomic<bool> bad{false};
    std::thread reader([&] {
        while (!stop.load()) {
            const auto v = c.read();
            if (v < 0 || v > 6000) {
                bad.store(true);
            }
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> adders;
    for (std::uint32_t t = 0; t < 2; ++t) {
        adders.emplace_back([&c, t] {
            for (int i = 0; i < 3000; ++i) {
                c.add(t, +1);
            }
        });
    }
    for (auto& th : adders) {
        th.join();
    }
    stop.store(true);
    reader.join();
    EXPECT_FALSE(bad.load());
    EXPECT_EQ(c.read(), 6000);
}

TEST(NativeTournamentMutex, ExclusionStress) {
    constexpr std::uint32_t kThreads = 4;
    constexpr int kIters = 3000;
    TournamentMutex mx(kThreads);
    std::int64_t plain_counter = 0;  // Deliberately non-atomic.
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                mx.lock(t);
                plain_counter += 1;  // Data race iff exclusion fails.
                mx.unlock(t);
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(plain_counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(NativeTournamentMutex, SlotValidation) {
    TournamentMutex mx(2);
    EXPECT_THROW(mx.lock(2), std::invalid_argument);
}

TEST(NativeMcsMutex, ExclusionStress) {
    constexpr std::uint32_t kThreads = 4;
    constexpr int kIters = 3000;
    McsMutex mx(kThreads);
    std::int64_t plain_counter = 0;  // Deliberately non-atomic.
    std::vector<std::thread> threads;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                mx.lock(t);
                plain_counter += 1;
                mx.unlock(t);
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(plain_counter, static_cast<std::int64_t>(kThreads) * kIters);
}

TEST(NativeMcsMutex, SlotValidation) {
    McsMutex mx(2);
    EXPECT_THROW(mx.lock(2), std::invalid_argument);
    EXPECT_THROW(McsMutex(0), std::invalid_argument);
}

struct RwInvariants {
    std::atomic<std::int32_t> readers{0};
    std::atomic<std::int32_t> writers{0};
    std::atomic<bool> violated{false};
    std::atomic<std::int32_t> max_readers{0};

    void reader_cs() {
        const auto r = readers.fetch_add(1) + 1;
        if (writers.load() != 0) {
            violated.store(true);
        }
        auto mr = max_readers.load();
        while (r > mr && !max_readers.compare_exchange_weak(mr, r)) {
        }
        std::this_thread::yield();
        readers.fetch_sub(1);
    }
    void writer_cs() {
        if (writers.fetch_add(1) != 0 || readers.load() != 0) {
            violated.store(true);
        }
        std::this_thread::yield();
        if (readers.load() != 0) {
            violated.store(true);
        }
        writers.fetch_sub(1);
    }
};

template <typename Lock>
void stress_rw(Lock& lock, std::uint32_t n, std::uint32_t m, int iters,
               RwInvariants* inv) {
    std::vector<std::thread> threads;
    for (std::uint32_t r = 0; r < n; ++r) {
        threads.emplace_back([&lock, r, iters, inv] {
            for (int i = 0; i < iters; ++i) {
                lock.lock_shared(r);
                inv->reader_cs();
                lock.unlock_shared(r);
            }
        });
    }
    for (std::uint32_t w = 0; w < m; ++w) {
        threads.emplace_back([&lock, w, iters, inv] {
            for (int i = 0; i < iters; ++i) {
                lock.lock(w);
                inv->writer_cs();
                lock.unlock(w);
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
}

class NativeAfStress
    : public ::testing::TestWithParam<std::tuple<std::uint32_t /*n*/,
                                                 std::uint32_t /*m*/,
                                                 std::uint32_t /*f*/>> {};

TEST_P(NativeAfStress, MutualExclusionInvariants) {
    const auto [n, m, f] = GetParam();
    if (f > n) {
        GTEST_SKIP();
    }
    AfLock lock(n, m, f);
    RwInvariants inv;
    stress_rw(lock, n, m, 800, &inv);
    EXPECT_FALSE(inv.violated.load());
}

INSTANTIATE_TEST_SUITE_P(Sweep, NativeAfStress,
                         ::testing::Combine(::testing::Values(2u, 4u),
                                            ::testing::Values(1u, 2u),
                                            ::testing::Values(1u, 2u, 4u)));

TEST(NativeAfLock, ArgumentValidation) {
    EXPECT_THROW(AfLock(4, 1, 0), std::invalid_argument);
    EXPECT_THROW(AfLock(4, 1, 5), std::invalid_argument);
    EXPECT_THROW(AfLock(0, 1, 1), std::invalid_argument);
    AfLock ok(4, 1, 2);
    EXPECT_THROW(ok.lock_shared(4), std::invalid_argument);
    EXPECT_THROW(ok.lock(1), std::invalid_argument);
}

TEST(NativeCentralized, MutualExclusionInvariants) {
    CentralizedRWLock lock;
    RwInvariants inv;
    stress_rw(lock, 4, 2, 1500, &inv);
    EXPECT_FALSE(inv.violated.load());
}

TEST(NativeFaa, MutualExclusionInvariants) {
    FaaRWLock lock(2);
    RwInvariants inv;
    stress_rw(lock, 4, 2, 1500, &inv);
    EXPECT_FALSE(inv.violated.load());
}

TEST(NativePhaseFair, MutualExclusionInvariants) {
    PhaseFairRWLock lock(2);
    RwInvariants inv;
    stress_rw(lock, 4, 2, 1500, &inv);
    EXPECT_FALSE(inv.violated.load());
}

TEST(NativePhaseFair, WritersCompleteUnderReaderTraffic) {
    // Phase fairness, natively: with readers hammering, two writer threads
    // must still finish a fixed workload quickly.
    PhaseFairRWLock lock(2);
    std::atomic<bool> stop{false};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            while (!stop.load()) {
                lock.lock_shared();
                std::this_thread::yield();
                lock.unlock_shared();
            }
        });
    }
    std::vector<std::thread> writers;
    std::atomic<int> writer_done{0};
    for (std::uint32_t w = 0; w < 2; ++w) {
        writers.emplace_back([&, w] {
            for (int i = 0; i < 400; ++i) {
                lock.lock(w);
                lock.unlock(w);
            }
            writer_done.fetch_add(1);
        });
    }
    for (auto& t : writers) {
        t.join();
    }
    stop.store(true);
    for (auto& t : readers) {
        t.join();
    }
    EXPECT_EQ(writer_done.load(), 2);
}

TEST(NativeAfLock, ReadersOverlapInTheCs) {
    // With a writer-free workload and blocking readers, reader concurrency
    // must actually materialize (scheduler permitting; retry a few times
    // since a 1-core box can serialize short CSes by chance).
    AfLock lock(4, 1, 2);
    std::atomic<std::int32_t> in{0};
    std::atomic<std::int32_t> max_in{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (std::uint32_t r = 0; r < 4; ++r) {
        threads.emplace_back([&, r] {
            while (!go.load()) {
                std::this_thread::yield();
            }
            for (int i = 0; i < 300; ++i) {
                lock.lock_shared(r);
                const auto now = in.fetch_add(1) + 1;
                auto mx = max_in.load();
                while (now > mx && !max_in.compare_exchange_weak(mx, now)) {
                }
                std::this_thread::yield();
                in.fetch_sub(1);
                lock.unlock_shared(r);
            }
        });
    }
    go.store(true);
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_GE(max_in.load(), 2);
}

TEST(AfSharedMutex, StdSharedLockInterop) {
    AfSharedMutex mtx(/*max_readers=*/8, /*max_writers=*/2);
    std::int64_t value = 0;  // Protected by mtx.
    RwInvariants inv;
    std::vector<std::thread> threads;
    for (int r = 0; r < 4; ++r) {
        threads.emplace_back([&] {
            for (int i = 0; i < 500; ++i) {
                std::shared_lock lk(mtx);
                inv.reader_cs();
                (void)value;
            }
        });
    }
    for (int w = 0; w < 2; ++w) {
        threads.emplace_back([&] {
            for (int i = 0; i < 500; ++i) {
                std::unique_lock lk(mtx);
                inv.writer_cs();
                ++value;
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_FALSE(inv.violated.load());
    EXPECT_EQ(value, 1000);
}

TEST(AfSharedMutex, SlotExhaustionThrows) {
    AfSharedMutex mtx(/*max_readers=*/1, /*max_writers=*/1);
    mtx.lock_shared();  // This thread takes the only reader slot.
    std::atomic<bool> threw{false};
    std::thread t([&] {
        try {
            mtx.lock_shared();
        } catch (const std::runtime_error&) {
            threw.store(true);
        }
    });
    t.join();
    mtx.unlock_shared();
    EXPECT_TRUE(threw.load());
}

}  // namespace
}  // namespace rwr::native
