// Correctness tests for the baseline reader-writer locks, plus the
// behavioural contrasts the paper draws: the FAA lock's O(1) reader exit
// (outside the read/write/CAS tradeoff), the reader-preference lock's
// Θ(log n) reader sections, and the big-mutex baseline's failure of
// Concurrent Entering (readers never share the CS).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "sim/explorer.hpp"

namespace rwr::baselines {
namespace {

using harness::ExperimentConfig;
using harness::LockKind;
using harness::run_experiment;
using harness::scenario_factory;
using harness::SchedKind;

class BaselineSweep
    : public ::testing::TestWithParam<
          std::tuple<LockKind, Protocol, std::uint32_t /*n*/,
                     std::uint32_t /*m*/, std::uint64_t /*seed*/>> {};

TEST_P(BaselineSweep, MutualExclusionAndProgress) {
    const auto [kind, proto, n, m, seed] = GetParam();
    ExperimentConfig cfg;
    cfg.lock = kind;
    cfg.protocol = proto;
    cfg.n = n;
    cfg.m = m;
    cfg.passages = 4;
    cfg.cs_steps = 2;
    cfg.seed = seed;
    const auto res = run_experiment(cfg);
    EXPECT_TRUE(res.finished) << "deadlock/livelock suspected for "
                              << harness::to_string(kind);
    EXPECT_EQ(res.me_violations, 0u);
    EXPECT_EQ(res.readers.num_passages, static_cast<std::uint64_t>(n) * 4);
    EXPECT_EQ(res.writers.num_passages, static_cast<std::uint64_t>(m) * 4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineSweep,
    ::testing::Combine(::testing::Values(LockKind::Centralized, LockKind::Faa,
                                         LockKind::PhaseFair,
                                         LockKind::ReaderPref,
                                         LockKind::BigMutex),
                       ::testing::Values(Protocol::WriteThrough,
                                         Protocol::WriteBack),
                       ::testing::Values(1u, 2u, 6u),
                       ::testing::Values(1u, 3u),
                       ::testing::Range<std::uint64_t>(0, 5)));

class BaselineExhaustive : public ::testing::TestWithParam<LockKind> {};

TEST_P(BaselineExhaustive, SmallSchedules) {
    ExperimentConfig cfg;
    cfg.lock = GetParam();
    cfg.protocol = Protocol::WriteBack;
    cfg.n = 2;
    cfg.m = 1;
    cfg.passages = 1;
    const auto res = sim::explore_dfs(scenario_factory(cfg), 12, 100'000);
    EXPECT_EQ(res.violations, 0u) << res.first_violation;
    EXPECT_EQ(res.incomplete_runs, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineExhaustive,
                         ::testing::Values(LockKind::Centralized,
                                           LockKind::Faa,
                                           LockKind::PhaseFair,
                                           LockKind::ReaderPref,
                                           LockKind::BigMutex));

TEST(FaaLock, ReaderExitIsConstantRmr) {
    // The FAA evasion: even under heavy contention, a reader's exit is at
    // most a couple of steps (one FAA, possibly one gate write).
    for (const std::uint32_t n : {4u, 16u, 64u}) {
        ExperimentConfig cfg;
        cfg.lock = LockKind::Faa;
        cfg.n = n;
        cfg.m = 2;
        cfg.passages = 4;
        cfg.seed = 9;
        const auto res = run_experiment(cfg);
        ASSERT_TRUE(res.finished);
        EXPECT_LE(res.readers.max_steps[static_cast<int>(Section::Exit)], 2u)
            << "n=" << n;
    }
}

TEST(FaaLock, ReadersShareCs) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Faa;
    cfg.n = 6;
    cfg.m = 1;
    cfg.passages = 5;
    cfg.cs_steps = 8;
    cfg.seed = 3;
    const auto res = run_experiment(cfg);
    ASSERT_TRUE(res.finished);
    EXPECT_GE(res.max_concurrent_readers, 3u);
}

TEST(ReaderPrefLock, ReadersShareCs) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::ReaderPref;
    cfg.n = 6;
    cfg.m = 1;
    cfg.passages = 5;
    cfg.cs_steps = 8;
    cfg.seed = 3;
    const auto res = run_experiment(cfg);
    ASSERT_TRUE(res.finished);
    EXPECT_GE(res.max_concurrent_readers, 3u);
}

TEST(CentralizedLock, ReadersShareCs) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::Centralized;
    cfg.n = 6;
    cfg.m = 1;
    cfg.passages = 5;
    cfg.cs_steps = 8;
    cfg.seed = 3;
    const auto res = run_experiment(cfg);
    ASSERT_TRUE(res.finished);
    EXPECT_GE(res.max_concurrent_readers, 3u);
}

TEST(BigMutexLock, ReadersNeverShareCs) {
    // The degenerate baseline violates Concurrent Entering: the CS is
    // exclusive even among readers.
    ExperimentConfig cfg;
    cfg.lock = LockKind::BigMutex;
    cfg.n = 6;
    cfg.m = 1;
    cfg.passages = 5;
    cfg.cs_steps = 8;
    cfg.seed = 3;
    const auto res = run_experiment(cfg);
    ASSERT_TRUE(res.finished);
    EXPECT_EQ(res.max_concurrent_readers, 1u);
}

TEST(PhaseFairLock, ReadersShareCs) {
    ExperimentConfig cfg;
    cfg.lock = LockKind::PhaseFair;
    cfg.n = 6;
    cfg.m = 1;
    cfg.passages = 5;
    cfg.cs_steps = 8;
    cfg.seed = 3;
    const auto res = run_experiment(cfg);
    ASSERT_TRUE(res.finished);
    EXPECT_GE(res.max_concurrent_readers, 3u);
}

TEST(PhaseFairLock, WritersProgressUnderContention) {
    // The fairness property the paper's family lacks: under sustained
    // reader traffic with fair scheduling, writers keep completing.
    ExperimentConfig cfg;
    cfg.lock = LockKind::PhaseFair;
    cfg.n = 8;
    cfg.m = 2;
    cfg.passages = 10;
    cfg.seed = 5;
    const auto res = run_experiment(cfg);
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.writers.num_passages, 20u);
}

TEST(ReaderPrefLock, ReaderSectionsGrowWithN) {
    // Tradeoff positioning: writer entry is Θ(log m) independent of n, so
    // reader exit must grow with n -- here it does, Θ(log n) via rmutex.
    double exit_small = 0, exit_big = 0;
    for (const std::uint32_t n : {4u, 256u}) {
        ExperimentConfig cfg;
        cfg.lock = LockKind::ReaderPref;
        cfg.n = n;
        cfg.m = 1;
        cfg.passages = 2;
        cfg.sched = SchedKind::RoundRobin;
        const auto res = run_experiment(cfg);
        ASSERT_TRUE(res.finished);
        (n == 4 ? exit_small : exit_big) =
            res.readers.mean_rmrs[static_cast<int>(Section::Exit)];
    }
    EXPECT_GT(exit_big, 1.5 * exit_small);
}

}  // namespace
}  // namespace rwr::baselines
