// LockTelemetry behaviour with RWR_TELEMETRY on (the build default):
// exact counter accounting single-threaded, exact totals under an 8-thread
// workload (this test runs under TSan in CI -- any counter race is a bug),
// histogram bucketing/quantiles, and detachment semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "native/af_lock.hpp"
#include "native/baselines.hpp"
#include "native/mutex.hpp"
#include "native/park.hpp"
#include "native/shared_mutex.hpp"
#include "native/telemetry.hpp"

namespace {

using namespace rwr::native;

TEST(TelemetryTest, EnabledInDefaultBuild) {
    EXPECT_TRUE(telemetry_enabled());
}

TEST(TelemetryTest, SingleThreadedExactCounts) {
    LockTelemetry telemetry;
    AfLock lock(4, 2, 2);
    lock.attach_telemetry(&telemetry);

    constexpr int kReaderPassages = 10;
    constexpr int kWriterPassages = 7;
    for (int i = 0; i < kReaderPassages; ++i) {
        lock.lock_shared(1);
        lock.unlock_shared(1);
    }
    for (int i = 0; i < kWriterPassages; ++i) {
        lock.lock(0);
        lock.unlock(0);
    }

    const auto snap = telemetry.aggregate();
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderAcquire), kReaderPassages);
    EXPECT_EQ(snap.count(TelemetryCounter::kWriterAcquire), kWriterPassages);
    // Uncontended throughout: nobody waited, nobody aborted.
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderContended), 0u);
    EXPECT_EQ(snap.count(TelemetryCounter::kWriterContended), 0u);
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderAbort), 0u);
    EXPECT_EQ(snap.count(TelemetryCounter::kWriterAbort), 0u);
    // The embedded WL reports under mutex_*, one acquisition per writer
    // passage -- writer passages are not double counted.
    EXPECT_EQ(snap.count(TelemetryCounter::kMutexAcquire), kWriterPassages);
}

TEST(TelemetryTest, AbortsAreCounted) {
    LockTelemetry telemetry;
    AfLock lock(2, 1, 1);
    lock.attach_telemetry(&telemetry);

    // Writer in its critical section => RSIG is WAIT => a reader try fails.
    lock.lock(0);
    EXPECT_FALSE(lock.try_lock_shared(0));
    EXPECT_FALSE(lock.try_lock_shared(1));
    lock.unlock(0);

    // Reader present => a writer try fails (rolls the passage forward).
    lock.lock_shared(0);
    EXPECT_FALSE(lock.try_lock(0));
    lock.unlock_shared(0);

    const auto snap = telemetry.aggregate();
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderAbort), 2u);
    EXPECT_EQ(snap.count(TelemetryCounter::kWriterAbort), 1u);
    // Failed acquisitions are not acquisitions.
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderAcquire), 1u);
    EXPECT_EQ(snap.count(TelemetryCounter::kWriterAcquire), 1u);
}

TEST(TelemetryTest, AbortRetriesAreCountedExactly) {
    LockTelemetry telemetry;
    AfLock lock(2, 2, 1);
    lock.attach_telemetry(&telemetry);

    // Writer in its CS: two failed reader tries by id 0 (the second is a
    // retry), one by id 1 (no retry), then a successful lock_shared by id
    // 0 -- also a retry: the flag records "previous attempt aborted", not
    // the new attempt's outcome.
    lock.lock(0);
    EXPECT_FALSE(lock.try_lock_shared(0));
    EXPECT_FALSE(lock.try_lock_shared(0));
    EXPECT_FALSE(lock.try_lock_shared(1));
    lock.unlock(0);
    lock.lock_shared(0);
    lock.unlock_shared(0);

    // Reader present: writer tries fail past the WL; the second try by
    // writer id 0 is a retry. This lock_shared(1) is reader id 1's first
    // attempt since its aborted try above -- a third reader retry.
    lock.lock_shared(1);
    EXPECT_FALSE(lock.try_lock(0));
    EXPECT_FALSE(lock.try_lock(0));
    EXPECT_FALSE(lock.try_lock(1));
    lock.unlock_shared(1);

    const auto snap = telemetry.aggregate();
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderAbort), 3u);
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderAbortRetry), 3u);
    EXPECT_EQ(snap.count(TelemetryCounter::kWriterAbort), 3u);
    EXPECT_EQ(snap.count(TelemetryCounter::kWriterAbortRetry), 1u);
    // The writer tries won the (uncontended) WL before aborting at the
    // reader-group handshake: WL acquisitions, no WL aborts.
    EXPECT_EQ(snap.count(TelemetryCounter::kMutexAbort), 0u);
    EXPECT_EQ(snap.count(TelemetryCounter::kMutexAbortRetry), 0u);
}

TEST(TelemetryTest, MutexAbortRetriesAreCountedExactly) {
    LockTelemetry telemetry;
    TournamentMutex mx(2);
    mx.attach_telemetry(&telemetry);
    mx.lock(0);
    EXPECT_FALSE(mx.try_lock(1));  // Abort, no retry.
    EXPECT_FALSE(mx.try_lock(1));  // Abort, retry.
    mx.unlock(0);
    mx.lock(1);  // Retry that succeeds.
    mx.unlock(1);
    const auto snap = telemetry.aggregate();
    EXPECT_EQ(snap.count(TelemetryCounter::kMutexAbort), 2u);
    EXPECT_EQ(snap.count(TelemetryCounter::kMutexAbortRetry), 2u);
    EXPECT_EQ(snap.count(TelemetryCounter::kMutexAcquire), 2u);
}

TEST(TelemetryTest, AbortLatencyIsSampled) {
    LockTelemetry telemetry;
    TournamentMutex mx(2);
    mx.attach_telemetry(&telemetry);
    mx.lock(0);
    // The abort stopwatch arms on kAbortLatency's thread-local sampling
    // sequence (period kSampleEvery), whose phase other tests in this
    // thread may have advanced: 2 * kSampleEvery consecutive aborts
    // guarantee at least one sampled record wherever the phase sits.
    for (std::uint32_t i = 0; i < 2 * LockTelemetry::kSampleEvery; ++i) {
        EXPECT_FALSE(mx.try_lock(1));
    }
    mx.unlock(0);
    const auto snap = telemetry.aggregate();
    EXPECT_GE(snap.samples(TelemetryHisto::kAbortLatency), 1u);
    EXPECT_EQ(snap.count(TelemetryCounter::kMutexAbort),
              2u * LockTelemetry::kSampleEvery);
}

TEST(TelemetryTest, DetachedLockCountsNothing) {
    LockTelemetry telemetry;
    AfLock lock(2, 1, 1);
    lock.attach_telemetry(&telemetry);
    lock.lock_shared(0);
    lock.unlock_shared(0);
    lock.attach_telemetry(nullptr);
    lock.lock_shared(0);
    lock.unlock_shared(0);
    EXPECT_EQ(telemetry.aggregate().count(TelemetryCounter::kReaderAcquire),
              1u);
}

TEST(TelemetryTest, SharedMutexFacadePropagates) {
    LockTelemetry telemetry;
    AfSharedMutex mx(4, 2);
    mx.attach_telemetry(&telemetry);
    {
        std::shared_lock<AfSharedMutex> r(mx);
    }
    {
        std::unique_lock<AfSharedMutex> w(mx);
    }
    const auto snap = telemetry.aggregate();
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderAcquire), 1u);
    EXPECT_EQ(snap.count(TelemetryCounter::kWriterAcquire), 1u);
}

TEST(TelemetryTest, BaselinesReportSameAxes) {
    {
        LockTelemetry telemetry;
        CentralizedRWLock lock;
        lock.attach_telemetry(&telemetry);
        lock.lock_shared();
        lock.unlock_shared();
        lock.lock();
        lock.unlock();
        const auto snap = telemetry.aggregate();
        EXPECT_EQ(snap.count(TelemetryCounter::kReaderAcquire), 1u);
        EXPECT_EQ(snap.count(TelemetryCounter::kWriterAcquire), 1u);
    }
    {
        LockTelemetry telemetry;
        FaaRWLock lock(1);
        lock.attach_telemetry(&telemetry);
        lock.lock_shared();
        lock.unlock_shared();
        lock.lock(0);
        lock.unlock(0);
        const auto snap = telemetry.aggregate();
        EXPECT_EQ(snap.count(TelemetryCounter::kReaderAcquire), 1u);
        EXPECT_EQ(snap.count(TelemetryCounter::kWriterAcquire), 1u);
        EXPECT_EQ(snap.count(TelemetryCounter::kMutexAcquire), 1u);
    }
    {
        LockTelemetry telemetry;
        PhaseFairRWLock lock(1);
        lock.attach_telemetry(&telemetry);
        lock.lock_shared();
        lock.unlock_shared();
        lock.lock(0);
        lock.unlock(0);
        const auto snap = telemetry.aggregate();
        EXPECT_EQ(snap.count(TelemetryCounter::kReaderAcquire), 1u);
        EXPECT_EQ(snap.count(TelemetryCounter::kWriterAcquire), 1u);
    }
}

// 8 concurrent threads, exact totals. Runs under TSan in CI: the per-slot
// relaxed atomics must be a race-free way to share slabs, and aggregate()
// must be safe to call while the workload is still running (exercised via
// the mid-flight sum below -- its value is unasserted; TSan asserts the
// absence of races).
TEST(TelemetryTest, MultiThreadedExactTotals) {
    constexpr std::uint32_t kReaders = 6;
    constexpr std::uint32_t kWriters = 2;
    constexpr int kPassages = 400;

    LockTelemetry telemetry;
    AfLock lock(kReaders, kWriters, 2);
    lock.attach_telemetry(&telemetry);

    std::vector<std::thread> threads;
    threads.reserve(kReaders + kWriters);
    for (std::uint32_t r = 0; r < kReaders; ++r) {
        threads.emplace_back([&, r] {
            for (int i = 0; i < kPassages; ++i) {
                lock.lock_shared(r);
                lock.unlock_shared(r);
                if (i % 16 == 0) {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (std::uint32_t w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            for (int i = 0; i < kPassages; ++i) {
                lock.lock(w);
                lock.unlock(w);
                std::this_thread::yield();
            }
        });
    }
    // Concurrent aggregation is part of the contract.
    const auto midflight = telemetry.aggregate();
    (void)midflight;
    for (auto& t : threads) {
        t.join();
    }

    const auto snap = telemetry.aggregate();
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderAcquire),
              static_cast<std::uint64_t>(kReaders) * kPassages);
    EXPECT_EQ(snap.count(TelemetryCounter::kWriterAcquire),
              static_cast<std::uint64_t>(kWriters) * kPassages);
    EXPECT_EQ(snap.count(TelemetryCounter::kMutexAcquire),
              static_cast<std::uint64_t>(kWriters) * kPassages);
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderAbort), 0u);
    EXPECT_EQ(snap.count(TelemetryCounter::kWriterAbort), 0u);
    // Contended counts are schedule-dependent; they only must not exceed
    // the acquisition counts they qualify.
    EXPECT_LE(snap.count(TelemetryCounter::kReaderContended),
              snap.count(TelemetryCounter::kReaderAcquire));
    EXPECT_LE(snap.count(TelemetryCounter::kWriterContended),
              snap.count(TelemetryCounter::kWriterAcquire));
}

TEST(TelemetryTest, HistogramBucketsAndQuantiles) {
    LockTelemetry telemetry;
    // 8 samples at ~2^4 ns, 2 at ~2^10 ns: p50 lands in the low bucket,
    // p90/max in the high one. Quantiles report bucket upper bounds.
    for (int i = 0; i < 8; ++i) {
        telemetry.record_ns(TelemetryHisto::kReaderEntry, 16);
    }
    telemetry.record_ns(TelemetryHisto::kReaderEntry, 1024);
    telemetry.record_ns(TelemetryHisto::kReaderEntry, 1500);

    const auto snap = telemetry.aggregate();
    EXPECT_EQ(snap.samples(TelemetryHisto::kReaderEntry), 10u);
    EXPECT_EQ(snap.quantile_ns(TelemetryHisto::kReaderEntry, 0.50), 32u);
    EXPECT_EQ(snap.quantile_ns(TelemetryHisto::kReaderEntry, 0.90), 2048u);
    EXPECT_EQ(snap.quantile_ns(TelemetryHisto::kReaderEntry, 1.0), 2048u);
    EXPECT_EQ(snap.samples(TelemetryHisto::kWriterEntry), 0u);
    EXPECT_EQ(snap.quantile_ns(TelemetryHisto::kWriterEntry, 0.5), 0u);
}

TEST(TelemetryTest, SnapshotSubtractionGivesIntervalDeltas) {
    LockTelemetry telemetry;
    telemetry.count(TelemetryCounter::kReaderAcquire, 5);
    auto before = telemetry.aggregate();
    telemetry.count(TelemetryCounter::kReaderAcquire, 3);
    auto after = telemetry.aggregate();
    after -= before;
    EXPECT_EQ(after.count(TelemetryCounter::kReaderAcquire), 3u);
}

TEST(TelemetryTest, BackoffStageNoting) {
    LockTelemetry telemetry;
    Backoff fresh;  // Never paused: no transition happened.
    telemetry.note_backoff(fresh);

    Backoff yielded;
    for (int i = 0; i <= Backoff::spin_limit(); ++i) {
        yielded.pause();
    }
    telemetry.note_backoff(yielded);

    const auto snap = telemetry.aggregate();
    EXPECT_EQ(snap.count(TelemetryCounter::kBackoffYield), 1u);
    EXPECT_EQ(snap.count(TelemetryCounter::kBackoffSleep), 0u);
}

// ---- Parking counters ------------------------------------------------------

TEST(TelemetryTest, ParkTimeoutCountsAreExact) {
    // Single-threaded and fully deterministic: nobody wakes the spot, so
    // the timed park must run to its deadline. One kernel wait per park
    // call (spurious EINTR wakes re-park and re-count), exactly one abort
    // for the final timeout, zero wakes.
    LockTelemetry telemetry;
    ParkingSpot spot;
    Deadline deadline = Deadline::after(std::chrono::milliseconds(20));
    std::uint64_t parks = 0;
    ParkResult r;
    do {
        r = spot.park(deadline, &telemetry, [] { return false; });
        ++parks;
    } while (r == ParkResult::kUnparked);
    EXPECT_EQ(r, ParkResult::kTimedOut);
    const auto snap = telemetry.aggregate();
    EXPECT_EQ(snap.count(TelemetryCounter::kFutexWait), parks);
    EXPECT_EQ(snap.count(TelemetryCounter::kParkAbort), 1u);
    EXPECT_EQ(snap.count(TelemetryCounter::kFutexWake), 0u);
}

TEST(TelemetryTest, WakeIsCountedWhenAWaiterIsParked) {
    // wake_all only counts when it observes a registered waiter. A round
    // where the waiter demonstrably reached the kernel (it recorded a
    // futex wait) must therefore have counted exactly one wake. The first
    // round virtually always parks; 100 attempts bound the loop.
    for (int round = 0; round < 100; ++round) {
        LockTelemetry waiter_t;
        LockTelemetry waker_t;
        ParkingSpot spot;
        std::atomic<bool> flag{false};
        std::thread waiter([&] {
            Deadline never = Deadline::infinite();
            while (!flag.load()) {
                spot.park(never, &waiter_t, [&] { return flag.load(); });
            }
        });
        while (spot.waiters() == 0) {
            std::this_thread::yield();
        }
        flag.store(true);
        spot.wake_all(&waker_t);
        waiter.join();
        const auto ws = waiter_t.aggregate();
        const auto ks = waker_t.aggregate();
        if (ws.count(TelemetryCounter::kFutexWait) >= 1 &&
            ks.count(TelemetryCounter::kFutexWake) == 1) {
            EXPECT_EQ(ws.count(TelemetryCounter::kParkAbort), 0u);
            return;
        }
    }
    FAIL() << "no round ever parked-and-woke; parking path likely broken";
}

TEST(TelemetryTest, ContendedTimedReaderParksAndAbortsExactlyOnce) {
    ASSERT_TRUE(parking_enabled())
        << "RWR_PARK=0 leaked into the test environment";
    LockTelemetry telemetry;
    AfLock lock(2, 1, 1);
    lock.attach_telemetry(&telemetry);
    lock.lock(0);  // RSIG = WAIT: the timed reader below must block.
    std::thread reader([&] {
        // 500ms: ample for the backoff to escalate spin -> yield -> park
        // even under TSan, then the parked wait times out on its own.
        EXPECT_FALSE(
            lock.try_lock_shared_for(1, std::chrono::milliseconds(500)));
    });
    reader.join();
    lock.unlock(0);
    const auto snap = telemetry.aggregate();
    EXPECT_GE(snap.count(TelemetryCounter::kFutexWait), 1u);
    EXPECT_EQ(snap.count(TelemetryCounter::kParkAbort), 1u);
    EXPECT_EQ(snap.count(TelemetryCounter::kReaderAbort), 1u);
    // The reader was gone before the writer released, and the writer
    // acquired uncontended: no wake was ever due.
    EXPECT_EQ(snap.count(TelemetryCounter::kFutexWake), 0u);
}

}  // namespace
