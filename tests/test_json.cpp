// harness/json.hpp (value tree, writer, strict parser) and
// harness/bench_json.hpp (the "rwr-bench-v1" schema validator the perf
// pipeline writes and bench_compare consumes).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "harness/bench_json.hpp"
#include "harness/json.hpp"
#include "native/telemetry.hpp"

namespace {

using rwr::harness::json::Value;
namespace bench = rwr::harness::bench;

TEST(JsonTest, ScalarsDump) {
    EXPECT_EQ(Value(nullptr).dump(), "null\n");
    EXPECT_EQ(Value(true).dump(), "true\n");
    EXPECT_EQ(Value(std::int64_t{-42}).dump(), "-42\n");
    EXPECT_EQ(Value(std::uint64_t{18446744073709551615ull}).dump(),
              "18446744073709551615\n");
    EXPECT_EQ(Value("hi\n\"there\"").dump(), "\"hi\\n\\\"there\\\"\"\n");
    // A double always re-parses as a double.
    EXPECT_EQ(Value(2.0).dump(), "2.0\n");
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndReplacesDuplicates) {
    auto obj = Value::object();
    obj.set("b", 1);
    obj.set("a", 2);
    obj.set("b", 3);  // Replace, not append.
    ASSERT_EQ(obj.members().size(), 2u);
    EXPECT_EQ(obj.members()[0].first, "b");
    EXPECT_EQ(obj.members()[1].first, "a");
    EXPECT_EQ(obj.find("b")->as_uint(), 3u);
    EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonTest, RoundTripThroughParser) {
    auto doc = Value::object();
    doc.set("name", "A_f lock");
    doc.set("count", std::uint64_t{12345678901234ull});
    doc.set("neg", std::int64_t{-7});
    doc.set("ratio", 0.375);
    doc.set("flag", true);
    doc.set("nothing", Value(nullptr));
    auto arr = Value::array();
    arr.push_back(1);
    arr.push_back("two");
    auto nested = Value::object();
    nested.set("deep", 3);
    arr.push_back(std::move(nested));
    doc.set("items", std::move(arr));

    const Value back = Value::parse(doc.dump());
    EXPECT_EQ(back.dump(), doc.dump());
    EXPECT_EQ(back.find("count")->as_uint(), 12345678901234ull);
    EXPECT_DOUBLE_EQ(back.find("ratio")->as_double(), 0.375);
    EXPECT_EQ(back.find("items")->items()[2].find("deep")->as_uint(), 3u);
}

TEST(JsonTest, ParserAcceptsEscapesAndWhitespace) {
    const Value v = Value::parse(
        "  { \"k\" : [ 1 , -2.5e1 , \"a\\tb\\u0041\" , null , false ] }  ");
    const auto& items = v.find("k")->items();
    EXPECT_EQ(items[0].as_uint(), 1u);
    EXPECT_DOUBLE_EQ(items[1].as_double(), -25.0);
    EXPECT_EQ(items[2].as_string(), "a\tbA");
    EXPECT_EQ(items[3].type(), Value::Type::Null);
    EXPECT_FALSE(items[4].as_bool());
}

TEST(JsonTest, ParserRejectsMalformedInput) {
    EXPECT_THROW(Value::parse(""), std::runtime_error);
    EXPECT_THROW(Value::parse("{"), std::runtime_error);
    EXPECT_THROW(Value::parse("{\"a\":1,}"), std::runtime_error);
    EXPECT_THROW(Value::parse("[1 2]"), std::runtime_error);
    EXPECT_THROW(Value::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(Value::parse("{\"a\":1} trailing"), std::runtime_error);
    EXPECT_THROW(Value::parse("nulll"), std::runtime_error);
    EXPECT_THROW(Value::parse("--3"), std::runtime_error);
}

TEST(JsonTest, TypeMismatchesThrow) {
    EXPECT_THROW((void)Value(1).as_string(), std::runtime_error);
    EXPECT_THROW((void)Value("x").as_double(), std::runtime_error);
    EXPECT_THROW((void)Value(std::int64_t{-1}).as_uint(), std::runtime_error);
    EXPECT_THROW((void)Value(1).items(), std::runtime_error);
    auto arr = Value::array();
    EXPECT_THROW(arr.set("k", 1), std::runtime_error);
}

// ---- rwr-bench-v1 schema ---------------------------------------------

Value valid_native_row() {
    auto row = Value::object();
    row.set("lock", "af");
    row.set("n", 4);
    row.set("f", 2);
    row.set("threads", 5);
    row.set("throughput_ops", 1.25e6);
    return row;
}

TEST(BenchJsonTest, ValidatesGoodDocuments) {
    auto doc = bench::make_doc("native_throughput");
    doc.set("results", Value::array()).push_back(valid_native_row());
    EXPECT_NO_THROW(bench::validate(doc));

    auto sim = bench::make_doc("tradeoff");
    auto row = Value::object();
    row.set("lock", "af");
    row.set("n", 64);
    row.set("f", 8);
    row.set("threads", 65);
    auto rmr = Value::object();
    rmr.set("reader_mean_passage", 3.5);
    rmr.set("writer_mean_passage", 9.0);
    rmr.set("reader_max_passage", 7);
    rmr.set("writer_max_passage", 12);
    row.set("sim_rmr", std::move(rmr));
    sim.set("results", Value::array()).push_back(std::move(row));
    EXPECT_NO_THROW(bench::validate(sim));

    // A dist row: the exact quartet alone is enough (sim backend)...
    auto dist_doc = bench::make_doc("dist");
    auto drow = Value::object();
    drow.set("lock", "e17-dist-homed");
    drow.set("protocol", "dsm-sim");
    drow.set("n", 16);
    drow.set("f", 1);
    drow.set("threads", 1);
    auto d = Value::object();
    d.set("ops", std::uint64_t{96});
    d.set("network_rmrs_per_op", 15.4);
    d.set("sessions", 16);
    d.set("shards", 1);
    drow.set("dist", d);
    auto& results = dist_doc.set("results", Value::array());
    results.push_back(drow);
    // ...and native loopback rows add the wall-clock fields.
    d.set("ops_per_sec", 2.5e6);
    d.set("p50_acquire_us", 1.2);
    d.set("p99_acquire_us", 40.0);
    d.set("wall_ms", 410.0);
    drow.set("protocol", "loopback");
    drow.set("dist", std::move(d));
    results.push_back(std::move(drow));
    EXPECT_NO_THROW(bench::validate(dist_doc));

    // An amortized row: the exact quartet alone suffices (deterministic
    // grid cell)...
    auto amort_doc = bench::make_doc("abortable");
    auto arow = Value::object();
    arow.set("lock", "jj-amortized");
    arow.set("protocol", "write-back");
    arow.set("n", 0);
    arow.set("m", 8);
    arow.set("f", 1);
    arow.set("threads", 1);
    auto a = Value::object();
    a.set("episodes", std::uint64_t{96});
    a.set("aborted", std::uint64_t{32});
    a.set("passages", std::uint64_t{64});
    a.set("writer_amortized_rmrs", 11.5);
    arow.set("amortized", a);
    auto& aresults = amort_doc.set("results", Value::array());
    aresults.push_back(arow);
    // ...and randomized-trial rows add the expectation fields.
    a.set("abort_rmr_mean", 4.25);
    a.set("abort_rmr_max", 9);
    a.set("expected_rmr", 10.9);
    a.set("ci95", 0.6);
    a.set("trials", 9);
    a.set("worst_case_rmr", 12.1);
    arow.set("lock", "pw-randomized");
    arow.set("amortized", std::move(a));
    aresults.push_back(std::move(arow));
    EXPECT_NO_THROW(bench::validate(amort_doc));
}

TEST(BenchJsonTest, RejectsSchemaViolations) {
    // Wrong schema tag.
    auto doc = bench::make_doc("x");
    doc.set("schema", "rwr-bench-v0");
    EXPECT_THROW(bench::validate(doc), std::runtime_error);

    // Row without any payload group.
    auto no_payload = bench::make_doc("x");
    {
        auto bare = Value::object();
        bare.set("lock", "af");
        bare.set("n", 1);
        bare.set("f", 1);
        bare.set("threads", 2);
        no_payload.set("results", Value::array()).push_back(std::move(bare));
    }
    EXPECT_THROW(bench::validate(no_payload), std::runtime_error);

    // Row missing a required axis.
    auto no_axis = bench::make_doc("x");
    auto bad = valid_native_row();
    bad.set("lock", 7);  // Not a string.
    no_axis.set("results", Value::array()).push_back(std::move(bad));
    EXPECT_THROW(bench::validate(no_axis), std::runtime_error);

    // sim_rmr without its required means.
    auto bad_rmr = bench::make_doc("x");
    auto rrow = valid_native_row();
    rrow.set("sim_rmr", Value::object());
    bad_rmr.set("results", Value::array()).push_back(std::move(rrow));
    EXPECT_THROW(bench::validate(bad_rmr), std::runtime_error);

    // dist without its required quartet.
    auto bad_dist = bench::make_doc("x");
    auto drow = valid_native_row();
    auto d = Value::object();
    d.set("ops", 10);
    d.set("sessions", 4);  // No network_rmrs_per_op / shards.
    drow.set("dist", std::move(d));
    bad_dist.set("results", Value::array()).push_back(std::move(drow));
    EXPECT_THROW(bench::validate(bad_dist), std::runtime_error);

    // amortized without its required quartet.
    auto bad_amort = bench::make_doc("x");
    auto arow = valid_native_row();
    auto a = Value::object();
    a.set("episodes", 10);
    a.set("passages", 8);  // No aborted / writer_amortized_rmrs.
    arow.set("amortized", std::move(a));
    bad_amort.set("results", Value::array()).push_back(std::move(arow));
    EXPECT_THROW(bench::validate(bad_amort), std::runtime_error);

    // amortized with a mistyped optional field.
    auto bad_amort2 = bench::make_doc("x");
    auto arow2 = valid_native_row();
    auto a2 = Value::object();
    a2.set("episodes", 10);
    a2.set("aborted", 2);
    a2.set("passages", 8);
    a2.set("writer_amortized_rmrs", 11.5);
    a2.set("expected_rmr", "10.9");  // Stringly-typed number.
    arow2.set("amortized", std::move(a2));
    bad_amort2.set("results", Value::array()).push_back(std::move(arow2));
    EXPECT_THROW(bench::validate(bad_amort2), std::runtime_error);
}

TEST(BenchJsonTest, WriteValidatesAndRoundTripsThroughDisk) {
    const std::string path = ::testing::TempDir() + "rwr_bench_json_test.json";
    auto doc = bench::make_doc("native_throughput");
    doc.set("results", Value::array()).push_back(valid_native_row());
    bench::write_file(path, doc);
    const Value back = bench::read_file(path);
    EXPECT_NO_THROW(bench::validate(back));
    EXPECT_EQ(back.dump(), doc.dump());
    std::remove(path.c_str());

    // An invalid document must never reach the disk.
    auto bad = bench::make_doc("x");
    bad.set("schema", "nope");
    EXPECT_THROW(bench::write_file(path, bad), std::runtime_error);
    std::ifstream probe(path);
    EXPECT_FALSE(probe.good());
}

TEST(BenchJsonTest, TelemetrySerializationCoversEveryCounter) {
    rwr::native::TelemetrySnapshot snap;
    snap.counters[0] = 42;
    const Value t = bench::telemetry_to_json(snap);
    EXPECT_EQ(t.members().size(), rwr::native::kTelemetryCounters);
    EXPECT_EQ(t.find("reader_acquisitions")->as_uint(), 42u);

    // Empty histograms are skipped; populated ones carry the quantiles.
    EXPECT_EQ(bench::latency_to_json(snap).members().size(), 0u);
    snap.histos[0][4] = 10;
    const Value lat = bench::latency_to_json(snap);
    ASSERT_NE(lat.find("reader_entry"), nullptr);
    EXPECT_EQ(lat.find("reader_entry")->find("samples")->as_uint(), 10u);
    EXPECT_EQ(lat.find("reader_entry")->find("p50")->as_uint(), 32u);
}

}  // namespace
