// RecoverableJJJMutex unit tests: tree shape arithmetic (the
// sub-logarithmic height claim is a formula before it is a measurement),
// whole-lock stage transitions, the O(1) Critical-Section Reentry path,
// the lost-ticket window (a crash after the tail CAS lands but before
// tkt[q] persists -- the certificate-recovery case), and the JJJ writer
// lock embedded in the recoverable RW lock. The exhaustive schedule-space
// arguments live in test_recover_explore.cpp; the RMR separation against
// the tournament is bench_recoverable's E14 exit-code assertion.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "recover/recover_experiment.hpp"
#include "recover/recoverable_jjj_mutex.hpp"
#include "recover/recoverable_rwlock.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace rwr {
namespace {

using recover::RecoverableJJJMutex;
using recover::RecoverExperimentConfig;
using recover::RecoverLockKind;
using recover::RecoveryOutcome;
using sim::Process;
using sim::Role;
using sim::System;

constexpr int kRecoverIdx = static_cast<int>(Section::Recover);

// ---- Tree shape ------------------------------------------------------------

TEST(JJJShape, AutoDeltaIsCeilLog2AndHeightIsLogOverLogLog) {
    System sys(Protocol::WriteBack);
    struct Case {
        std::uint32_t m, delta, height;
    };
    // height = #levels of ceil-division by delta until one node remains.
    const Case cases[] = {
        {2, 2, 1},   // One binary node.
        {4, 2, 2},   // ceil(log2 4) = 2: 2 leaves + root.
        {5, 3, 2},   // ceil(5/3)=2 leaves + root.
        {16, 4, 2},  // 4 leaves + root: half the tournament's 4 levels.
        {64, 6, 3},  // ceil(64/6)=11 -> 2 -> 1.
    };
    for (const Case& c : cases) {
        RecoverableJJJMutex mx(sys.memory(), "jm" + std::to_string(c.m), c.m);
        EXPECT_EQ(mx.delta(), c.delta) << "m=" << c.m;
        EXPECT_EQ(mx.height(), c.height) << "m=" << c.m;
    }
}

TEST(JJJShape, ExplicitDeltaOverridesAndFlattensTheTree) {
    System sys(Protocol::WriteBack);
    RecoverableJJJMutex flat(sys.memory(), "flat", /*m=*/8, /*delta=*/8);
    EXPECT_EQ(flat.delta(), 8u);
    EXPECT_EQ(flat.height(), 1u);  // One 8-ported node: a plain ticket lock.
}

TEST(JJJShape, RejectsOutOfRangeDelta) {
    System sys(Protocol::WriteBack);
    // delta must arbitrate at least two parties and fit the 8-bit taker
    // field of the tail encoding.
    EXPECT_THROW(RecoverableJJJMutex(sys.memory(), "bad1", 4, /*delta=*/1),
                 std::invalid_argument);
    EXPECT_THROW(RecoverableJJJMutex(sys.memory(), "bad2", 4, /*delta=*/256),
                 std::invalid_argument);
    EXPECT_NO_THROW(RecoverableJJJMutex(sys.memory(), "ok", 4, /*delta=*/255));
}

// ---- Stage transitions and CSR ---------------------------------------------
// Mirrors the tournament's stage tests: the two locks share the
// RecoverableSlotMutex protocol, so the same probes must hold verbatim.

struct JJJRig {
    System sys{Protocol::WriteBack};
    std::unique_ptr<RecoverableJJJMutex> mx;
    explicit JJJRig(std::uint32_t m) {
        mx = std::make_unique<RecoverableJJJMutex>(sys.memory(), "jm", m);
        sys.add_process(Role::Writer);
    }
};

sim::SimTask<void> stage_probe(RecoverableJJJMutex& mx, System& sys,
                               Process& p, std::vector<Word>& observed) {
    observed.push_back(mx.stage_of(sys.memory(), 0));
    co_await mx.enter(p, 0);
    observed.push_back(mx.stage_of(sys.memory(), 0));
    co_await mx.exit_slot(p, 0);
    observed.push_back(mx.stage_of(sys.memory(), 0));
}

TEST(JJJMutex, StageWordTracksThePassagePhases) {
    JJJRig rig(/*m=*/3);
    Process& p = rig.sys.process(0);
    std::vector<Word> observed;
    p.set_task(stage_probe(*rig.mx, rig.sys, p, observed));
    sim::run_solo(rig.sys, 0, /*max_steps=*/1000);
    ASSERT_TRUE(p.finished());
    ASSERT_EQ(observed.size(), 3u);
    EXPECT_EQ(observed[0], RecoverableJJJMutex::kIdle);
    EXPECT_EQ(observed[1], RecoverableJJJMutex::kInCS);
    EXPECT_EQ(observed[2], RecoverableJJJMutex::kIdle);
}

sim::SimTask<void> recover_only(RecoverableJJJMutex& mx, Process& p,
                                RecoveryOutcome& out) {
    co_await mx.recover_slot(p, 0, out);
}

TEST(JJJMutex, RecoverOnIdleReportsNothingToRepair) {
    JJJRig rig(/*m=*/3);
    Process& p = rig.sys.process(0);
    RecoveryOutcome out = RecoveryOutcome::InCriticalSection;
    p.set_task(recover_only(*rig.mx, p, out));
    sim::run_solo(rig.sys, 0, /*max_steps=*/1000);
    ASSERT_TRUE(p.finished());
    EXPECT_EQ(out, RecoveryOutcome::None);
}

sim::SimTask<void> enter_then_recover(RecoverableJJJMutex& mx, Process& p,
                                      RecoveryOutcome& out,
                                      std::uint64_t& recover_steps) {
    co_await mx.enter(p, 0);
    p.set_section(Section::Recover);
    const std::uint64_t before = p.stats().steps[kRecoverIdx];
    co_await mx.recover_slot(p, 0, out);
    recover_steps = p.stats().steps[kRecoverIdx] - before;
}

TEST(JJJMutex, RecoverInsideTheCSIsConstantTime) {
    // CSR must stay O(1) -- one stage read -- regardless of tree height:
    // use m=16 (height 2) so a path walk would be visibly non-constant.
    JJJRig rig(/*m=*/16);
    Process& p = rig.sys.process(0);
    RecoveryOutcome out = RecoveryOutcome::None;
    std::uint64_t recover_steps = 0;
    p.set_task(enter_then_recover(*rig.mx, p, out, recover_steps));
    sim::run_solo(rig.sys, 0, /*max_steps=*/2000);
    ASSERT_TRUE(p.finished());
    EXPECT_EQ(out, RecoveryOutcome::InCriticalSection);
    EXPECT_LE(recover_steps, 2u);
    EXPECT_EQ(rig.mx->stage_of(rig.sys.memory(), 0),
              RecoverableJJJMutex::kInCS);
}

// ---- The lost-ticket window ------------------------------------------------

RecoverExperimentConfig jjj_cfg(std::uint32_t m) {
    RecoverExperimentConfig cfg;
    cfg.lock = RecoverLockKind::JJJMutex;
    cfg.n = 0;
    cfg.m = m;
    cfg.f = 1;
    cfg.passages = 2;
    cfg.cs_steps = 1;
    cfg.sched = harness::SchedKind::RoundRobin;
    cfg.max_steps = 100000;
    return cfg;
}

TEST(JJJMutex, EveryEntryStepCrashIsRepairedIncludingTheLostTicket) {
    // Walk the crash point across the whole entry section one step at a
    // time. Some step is exactly "tail CAS landed, tkt[q] not yet
    // persisted" -- the window where only the obs[] certificate scan can
    // tell an owned ticket from a lost CAS. Every placement must converge
    // with zero ME/CSR violations and exactly one restart.
    std::uint64_t steps_covered = 0;
    for (std::uint64_t s = 1; s <= 40; ++s) {
        auto cfg = jjj_cfg(/*m=*/2);
        cfg.faults.crash_restart(/*victim=*/0, Section::Entry, s);
        const auto res = recover::run_recover_experiment(cfg);
        ASSERT_TRUE(res.finished) << "entry step " << s;
        if (res.restarts == 0) {
            break;  // Walked off the end of the section: coverage complete.
        }
        EXPECT_EQ(res.restarts, 1u) << "entry step " << s;
        EXPECT_EQ(res.me_violations, 0u)
            << "entry step " << s << ": " << res.first_violation;
        EXPECT_EQ(res.rme_violations, 0u)
            << "entry step " << s << ": " << res.first_violation;
        ++steps_covered;
    }
    // The witness: the walk really terminated by falling off the section's
    // end, after covering the CAS + persist + spin prefix.
    EXPECT_GE(steps_covered, 4u);
    EXPECT_LT(steps_covered, 40u);
}

TEST(JJJMutex, ExitCrashAtEveryStepFinishesTheRelease) {
    // The guarded-grant argument, empirically: re-running a half-done
    // release (including at height 2, where root and leaf release
    // interleave) must neither deadlock the successor nor double-grant.
    for (const std::uint32_t m : {2u, 5u}) {
        std::uint64_t steps_covered = 0;
        for (std::uint64_t s = 1; s <= 40; ++s) {
            auto cfg = jjj_cfg(m);
            cfg.faults.crash_restart(/*victim=*/0, Section::Exit, s);
            const auto res = recover::run_recover_experiment(cfg);
            ASSERT_TRUE(res.finished) << "m=" << m << " exit step " << s;
            if (res.restarts == 0) {
                break;
            }
            EXPECT_EQ(res.me_violations + res.rme_violations, 0u)
                << "m=" << m << " exit step " << s << ": "
                << res.first_violation;
            ++steps_covered;
        }
        EXPECT_GE(steps_covered, 1u) << "m=" << m;
        EXPECT_LT(steps_covered, 40u) << "m=" << m;
    }
}

TEST(JJJMutex, SurvivesNestedCrashDuringCertificateRecovery) {
    // Crash mid-entry, then crash AGAIN one step into the resulting
    // recovery (min_restarts gates the second fault to the restarted
    // incarnation). The certificate argument must hold inductively: the
    // second recovery still finds at most one unreleased ticket.
    for (std::uint64_t j = 1; j <= 20; ++j) {
        auto cfg = jjj_cfg(/*m=*/2);
        cfg.faults.crash_restart(/*victim=*/0, Section::Entry, 2);
        cfg.faults.crash_restart(/*victim=*/0, Section::Recover, j,
                                 /*min_restarts=*/1);
        const auto res = recover::run_recover_experiment(cfg);
        ASSERT_TRUE(res.finished) << "recover step " << j;
        if (res.restarts < 2) {
            break;  // Second crash fell past the recovery's end.
        }
        EXPECT_EQ(res.me_violations + res.rme_violations, 0u)
            << "recover step " << j << ": " << res.first_violation;
        EXPECT_GT(res.max_chain_recovery_steps, 0u) << "recover step " << j;
    }
}

// ---- Embedded in the RW lock -----------------------------------------------

TEST(JJJInRWLock, NameAdvertisesTheEmbeddedWriterLock) {
    System sys(Protocol::WriteBack);
    recover::RecoverableRWLock plain(sys.memory(), "a", 2, 2, 1);
    recover::RecoverableRWLock jjj(sys.memory(), "b", 2, 2, 1,
                                   recover::WriterLockKind::JJJ);
    EXPECT_EQ(plain.name(), "recoverable-rw");
    EXPECT_EQ(jjj.name(), "recoverable-rw-jjj");
}

TEST(JJJInRWLock, CrashStormOverBothRolesConvergesCleanly) {
    RecoverExperimentConfig cfg;
    cfg.lock = RecoverLockKind::RwLockJJJ;
    cfg.n = 2;
    cfg.m = 2;
    cfg.f = 1;
    cfg.passages = 3;
    cfg.cs_steps = 1;
    cfg.sched = harness::SchedKind::Random;
    cfg.seed = 23;
    cfg.max_steps = 200000;
    // One crash per process (reader and writer alike), spread over sections.
    static constexpr Section kSecs[3] = {Section::Entry, Section::Critical,
                                         Section::Exit};
    for (std::uint32_t v = 0; v < 4; ++v) {
        cfg.faults.crash_restart(v, kSecs[v % 3], 1);
    }
    const auto res = recover::run_recover_experiment(cfg);
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.restarts, 4u);
    EXPECT_EQ(res.faults_fired, 4u);
    EXPECT_EQ(res.me_violations, 0u) << res.first_violation;
    EXPECT_EQ(res.rme_violations, 0u) << res.first_violation;
    EXPECT_EQ(res.recovery.episodes, 4u);
    EXPECT_GT(res.recovery.max_rmrs, 0u);
}

}  // namespace
}  // namespace rwr
