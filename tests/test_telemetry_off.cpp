// Telemetry zero-cost-when-off proof. This translation unit is compiled
// with RWR_TELEMETRY=0 (see tests/CMakeLists.txt): the locks must build
// and behave identically with every telemetry hook compiled out, attach
// must be an accepted no-op, and aggregates must stay all-zero.
//
// The structural half of the guarantee -- no telemetry members, no extra
// atomics in the hot path -- is enforced at compile time below by checking
// the OFF-build shell classes are empty-ish and by the RWR_TELEM macro
// erasing its arguments.
#include <gtest/gtest.h>

#include "native/af_lock.hpp"
#include "native/baselines.hpp"
#include "native/shared_mutex.hpp"
#include "native/telemetry.hpp"

#if RWR_TELEMETRY
#error "test_telemetry_off must be compiled with RWR_TELEMETRY=0"
#endif

namespace {

using namespace rwr::native;

TEST(TelemetryOffTest, ReportsDisabled) {
    EXPECT_FALSE(telemetry_enabled());
}

TEST(TelemetryOffTest, MacroErasesItsArguments) {
    // RWR_TELEM(...) must expand to nothing: if the expression below were
    // evaluated, the test would fail.
    bool evaluated = false;
    RWR_TELEM(evaluated = true;)
    EXPECT_FALSE(evaluated);
}

TEST(TelemetryOffTest, AttachIsANoOpAndCountersStayZero) {
    LockTelemetry telemetry;
    AfLock lock(4, 2, 2);
    lock.attach_telemetry(&telemetry);  // Must compile; must do nothing.

    for (int i = 0; i < 5; ++i) {
        lock.lock_shared(0);
        lock.unlock_shared(0);
        lock.lock(0);
        lock.unlock(0);
    }
    lock.lock(0);
    EXPECT_FALSE(lock.try_lock_shared(1));  // Abort path still works...
    lock.unlock(0);

    const auto snap = telemetry.aggregate();
    for (std::uint32_t c = 0; c < kTelemetryCounters; ++c) {
        EXPECT_EQ(snap.counters[c], 0u)
            << to_string(static_cast<TelemetryCounter>(c));
    }
    for (std::uint32_t h = 0; h < kTelemetryHistos; ++h) {
        EXPECT_EQ(snap.samples(static_cast<TelemetryHisto>(h)), 0u);
    }
}

TEST(TelemetryOffTest, AllLocksCompileWithHooksErased) {
    LockTelemetry telemetry;

    CentralizedRWLock c;
    c.attach_telemetry(&telemetry);
    c.lock_shared();
    c.unlock_shared();
    c.lock();
    c.unlock();

    FaaRWLock f(1);
    f.attach_telemetry(&telemetry);
    f.lock_shared();
    f.unlock_shared();
    f.lock(0);
    f.unlock(0);

    PhaseFairRWLock p(1);
    p.attach_telemetry(&telemetry);
    p.lock_shared();
    p.unlock_shared();
    p.lock(0);
    p.unlock(0);

    AfSharedMutex mx(2, 1);
    mx.attach_telemetry(&telemetry);
    mx.lock_shared();
    mx.unlock_shared();
    mx.lock();
    mx.unlock();

    EXPECT_EQ(telemetry.aggregate().count(TelemetryCounter::kReaderAcquire),
              0u);
}

TEST(TelemetryOffTest, ShellStopwatchHasNoState) {
    // The OFF-build stopwatch must carry nothing (the ON build carries a
    // pointer, a flag and a time point): proof the hot path gains no
    // spills when telemetry is compiled out.
    static_assert(sizeof(TelemetryStopwatch) == 1,
                  "OFF-build TelemetryStopwatch must be empty");
    TelemetryStopwatch sw(nullptr, TelemetryHisto::kReaderEntry);
    sw.stop();                                     // No-op.
    sw.stop_into(TelemetryHisto::kAbortLatency);   // No-op.
    SUCCEED();
}

}  // namespace
