// Cross-cutting model properties:
//
//  * Protocol transparency: the coherence protocol affects RMR *accounting*
//    only -- identical schedules under write-through, write-back and DSM
//    must produce identical values, responses and passage counts.
//  * Fail-stop in the remainder section: the paper's failure model allows
//    processes to stop forever in the remainder section ("processes do not
//    fail-stop outside the remainder section"); live processes must keep
//    completing passages regardless.
//  * Scheduler-independence of solo costs: a process running alone incurs
//    identical step sequences whatever the scheduler.
#include <gtest/gtest.h>

#include <memory>

#include "harness/experiment.hpp"
#include "harness/locks.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace rwr {
namespace {

using harness::ExperimentConfig;
using harness::LockKind;
using sim::Process;
using sim::Role;

struct ReplayOutcome {
    std::vector<Word> final_values;
    std::vector<std::uint64_t> passages;
    std::uint64_t total_rmrs = 0;
    bool finished = false;
};

ReplayOutcome run_under(Protocol proto, LockKind kind,
                        const std::vector<std::size_t>& choices) {
    sim::System sys(proto);
    auto lock = harness::make_sim_lock(kind, sys.memory(), 3, 2, 2);
    for (int r = 0; r < 3; ++r) {
        Process& p = sys.add_process(Role::Reader);
        sim::DriveConfig dc;
        dc.passages = 2;
        p.set_task(sim::drive_passages(*lock, p, dc));
    }
    for (int w = 0; w < 2; ++w) {
        Process& p = sys.add_process(Role::Writer);
        sim::DriveConfig dc;
        dc.passages = 2;
        p.set_task(sim::drive_passages(*lock, p, dc));
    }
    sim::ReplayScheduler sched(choices);
    const auto res = sim::run(sys, sched, 2'000'000);
    ReplayOutcome out;
    out.finished = res.all_finished;
    out.total_rmrs = sys.memory().total_rmrs();
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(sys.memory().num_variables()); ++i) {
        out.final_values.push_back(sys.memory().peek(VarId{i}));
    }
    for (ProcId id = 0; id < sys.num_processes(); ++id) {
        out.passages.push_back(sys.process(id).completed_passages());
    }
    return out;
}

class ProtocolTransparency
    : public ::testing::TestWithParam<std::tuple<LockKind, std::uint64_t>> {
};

TEST_P(ProtocolTransparency, SameScheduleSameValuesDifferentCosts) {
    const auto [kind, seed] = GetParam();
    // A pseudo-random but fixed choice sequence; identical across runs.
    std::vector<std::size_t> choices;
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
    for (int i = 0; i < 5000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        choices.push_back(static_cast<std::size_t>(x % 5));
    }
    const auto wt = run_under(Protocol::WriteThrough, kind, choices);
    const auto wb = run_under(Protocol::WriteBack, kind, choices);
    const auto dsm = run_under(Protocol::Dsm, kind, choices);
    ASSERT_TRUE(wt.finished && wb.finished && dsm.finished);
    EXPECT_EQ(wt.final_values, wb.final_values);
    EXPECT_EQ(wt.final_values, dsm.final_values);
    EXPECT_EQ(wt.passages, wb.passages);
    EXPECT_EQ(wt.passages, dsm.passages);
    // Costs differ: WT pays for every write; WB exploits exclusivity.
    EXPECT_GT(wt.total_rmrs, wb.total_rmrs);
}

INSTANTIATE_TEST_SUITE_P(
    AllLocks, ProtocolTransparency,
    ::testing::Combine(::testing::Values(LockKind::Af,
                                         LockKind::Centralized,
                                         LockKind::Faa, LockKind::PhaseFair,
                                         LockKind::ReaderPref,
                                         LockKind::BigMutex),
                       ::testing::Range<std::uint64_t>(0, 5)));

class FailStopInRemainder : public ::testing::TestWithParam<LockKind> {};

TEST_P(FailStopInRemainder, LiveProcessesKeepProgressing) {
    const LockKind kind = GetParam();
    sim::System sys(Protocol::WriteBack);
    auto lock = harness::make_sim_lock(kind, sys.memory(), 4, 2, 2);
    std::vector<Process*> procs;
    for (int r = 0; r < 4; ++r) {
        Process& p = sys.add_process(Role::Reader);
        sim::DriveConfig dc;
        dc.passages = 6;
        dc.remainder_steps = 1;  // Observable remainder pause.
        p.set_task(sim::drive_passages(*lock, p, dc));
        procs.push_back(&p);
    }
    for (int w = 0; w < 2; ++w) {
        Process& p = sys.add_process(Role::Writer);
        sim::DriveConfig dc;
        dc.passages = 6;
        dc.remainder_steps = 1;
        p.set_task(sim::drive_passages(*lock, p, dc));
        procs.push_back(&p);
    }
    sys.start_all();

    // Run everyone until reader 0 and writer 0 (pid 4) have each completed
    // one passage and sit in the remainder section -- then fail-stop them
    // (simply never schedule them again).
    sim::RandomScheduler warmup(11);
    std::uint64_t guard = 0;
    auto parked = [&](ProcId id) {
        return sys.process(id).completed_passages() >= 1 &&
               sys.process(id).section() == Section::Remainder;
    };
    while ((!parked(0) || !parked(4)) && guard++ < 2'000'000) {
        const auto runnable = sys.runnable();
        ASSERT_FALSE(runnable.empty());
        sys.step(warmup.pick(sys, runnable));
    }
    ASSERT_TRUE(parked(0) && parked(4));

    // Fail-stop pids 0 and 4: schedule only the others.
    sim::RandomScheduler sched(13);
    guard = 0;
    auto survivors_done = [&] {
        for (ProcId id = 0; id < 6; ++id) {
            if (id == 0 || id == 4) {
                continue;
            }
            if (sys.process(id).completed_passages() < 6) {
                return false;
            }
        }
        return true;
    };
    while (!survivors_done() && guard++ < 5'000'000) {
        auto runnable = sys.runnable();
        std::erase(runnable, ProcId{0});
        std::erase(runnable, ProcId{4});
        ASSERT_FALSE(runnable.empty()) << "survivors blocked on the failed";
        sys.step(sched.pick(sys, runnable));
    }
    EXPECT_TRUE(survivors_done())
        << harness::to_string(kind)
        << ": live processes starved by remainder-section fail-stops";
}

INSTANTIATE_TEST_SUITE_P(AllLocks, FailStopInRemainder,
                         ::testing::Values(LockKind::Af,
                                           LockKind::Centralized,
                                           LockKind::Faa,
                                           LockKind::PhaseFair,
                                           LockKind::ReaderPref,
                                           LockKind::BigMutex));

TEST(SoloDeterminism, SoloPassageIsSchedulerIndependent) {
    // A process alone in the system takes exactly the same steps whatever
    // the scheduler (there is only one runnable choice).
    auto run_one = [](auto make_sched) {
        sim::System sys(Protocol::WriteBack);
        auto lock =
            harness::make_sim_lock(LockKind::Af, sys.memory(), 4, 1, 2);
        Process& p = sys.add_process(Role::Reader);
        sim::DriveConfig dc;
        dc.passages = 2;
        p.set_task(sim::drive_passages(*lock, p, dc));
        auto sched = make_sched();
        sim::run(sys, *sched, 100'000);
        return p.stats().total_steps();
    };
    const auto rr = run_one([] {
        return std::make_unique<sim::RoundRobinScheduler>();
    });
    const auto rnd = run_one([] {
        return std::make_unique<sim::RandomScheduler>(99);
    });
    EXPECT_EQ(rr, rnd);
}

}  // namespace
}  // namespace rwr
