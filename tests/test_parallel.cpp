// The parallel sweep runner (harness/parallel.hpp) and the engine
// invariants it leans on:
//   * parallel_for covers every index exactly once and propagates the first
//     exception after the pool joins;
//   * run_experiments returns bit-identical results for --jobs 1 and
//     --jobs 8 -- per-cell RMR tables AND recorded schedules -- because each
//     cell's simulation is single-threaded and seeded (determinism
//     satellite of the engine overhaul);
//   * System's maintained runnable index agrees with a brute-force process
//     scan at every step, including across crashes and stalls.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "sim/fault.hpp"
#include "sim/task.hpp"

namespace {

using namespace rwr;
using namespace rwr::harness;

// ---- parallel_for mechanics ---------------------------------------------

TEST(ParallelFor, CoversEveryIndexOnce) {
    for (const unsigned jobs : {1u, 3u, 8u}) {
        std::vector<std::atomic<int>> hits(257);
        parallel_for(hits.size(), jobs,
                     [&hits](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < hits.size(); ++i) {
            ASSERT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
        }
    }
}

TEST(ParallelFor, ZeroCountIsANoop) {
    parallel_for(0, 8, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, MoreJobsThanCellsWorks) {
    std::atomic<int> ran{0};
    parallel_for(2, 16, [&ran](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 2);
}

TEST(ParallelFor, FirstExceptionIsRethrownAfterJoin) {
    for (const unsigned jobs : {1u, 4u}) {
        std::atomic<int> ran{0};
        try {
            parallel_for(64, jobs, [&ran](std::size_t i) {
                ran.fetch_add(1);
                if (i == 5) {
                    throw std::runtime_error("cell 5 failed");
                }
            });
            FAIL() << "expected rethrow (jobs=" << jobs << ")";
        } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "cell 5 failed");
        }
        // The failure stops dispatch of further cells.
        EXPECT_LT(ran.load(), 64) << "jobs=" << jobs;
    }
}

TEST(ParallelFor, DefaultJobsIsPositive) { EXPECT_GE(default_jobs(), 1u); }

TEST(ParseJobs, ReadsFlagAndFallsBack) {
    const char* argv1[] = {"bench", "--jobs", "3"};
    EXPECT_EQ(parse_jobs(3, const_cast<char**>(argv1)), 3u);
    const char* argv2[] = {"bench"};
    EXPECT_EQ(parse_jobs(1, const_cast<char**>(argv2)), default_jobs());
    const char* argv3[] = {"bench", "--jobs", "0"};
    EXPECT_EQ(parse_jobs(3, const_cast<char**>(argv3)), default_jobs());
}

// ---- Determinism: jobs=1 vs jobs=8 --------------------------------------

std::vector<ExperimentConfig> determinism_grid() {
    std::vector<ExperimentConfig> cfgs;
    for (const Protocol proto :
         {Protocol::WriteThrough, Protocol::WriteBack}) {
        for (const std::uint32_t n : {4u, 8u, 16u}) {
            ExperimentConfig cfg;
            cfg.lock = LockKind::Af;
            cfg.protocol = proto;
            cfg.n = n;
            cfg.m = 2;
            cfg.f = 2;
            cfg.passages = 2;
            // Random scheduling + recorded schedules: the strictest
            // determinism probe we have -- any cross-thread leakage of RNG
            // or engine state would desynchronize the traces.
            cfg.sched = SchedKind::Random;
            cfg.seed = 42 + n;
            cfg.record_schedule = true;
            cfgs.push_back(cfg);
        }
    }
    return cfgs;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b,
                      std::size_t cell) {
    ASSERT_EQ(a.finished, b.finished) << "cell " << cell;
    EXPECT_EQ(a.steps, b.steps) << "cell " << cell;
    EXPECT_EQ(a.readers.mean_passage_rmrs, b.readers.mean_passage_rmrs)
        << "cell " << cell;
    EXPECT_EQ(a.readers.max_passage_rmrs, b.readers.max_passage_rmrs)
        << "cell " << cell;
    EXPECT_EQ(a.writers.mean_passage_rmrs, b.writers.mean_passage_rmrs)
        << "cell " << cell;
    EXPECT_EQ(a.writers.max_passage_rmrs, b.writers.max_passage_rmrs)
        << "cell " << cell;
    for (int s = 0; s < kNumSections; ++s) {
        EXPECT_EQ(a.readers.mean_rmrs[s], b.readers.mean_rmrs[s])
            << "cell " << cell << " sec " << s;
        EXPECT_EQ(a.writers.mean_rmrs[s], b.writers.mean_rmrs[s])
            << "cell " << cell << " sec " << s;
    }
    EXPECT_EQ(a.me_violations, b.me_violations) << "cell " << cell;
    // Byte-identical schedules: the whole execution, not just aggregates.
    EXPECT_EQ(a.schedule, b.schedule) << "cell " << cell;
}

TEST(Determinism, Jobs1AndJobs8AreBitIdentical) {
    const auto cfgs = determinism_grid();
    const auto seq = run_experiments(cfgs, 1);
    const auto par = run_experiments(cfgs, 8);
    ASSERT_EQ(seq.size(), cfgs.size());
    ASSERT_EQ(par.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        expect_identical(seq[i], par[i], i);
    }
}

TEST(Determinism, RepeatedParallelRunsAgree) {
    const auto cfgs = determinism_grid();
    const auto a = run_experiments(cfgs, 8);
    const auto b = run_experiments(cfgs, 8);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        expect_identical(a[i], b[i], i);
    }
}

// ---- Maintained runnable index vs brute force ---------------------------

sim::SimTask<void> ping(rwr::sim::Process& p, VarId v, int steps) {
    for (int i = 0; i < steps; ++i) {
        co_await p.read(v);
    }
}

std::vector<ProcId> brute_force_runnable(const sim::System& sys) {
    std::vector<ProcId> out;
    for (ProcId id = 0; id < sys.num_processes(); ++id) {
        if (sys.process(id).runnable()) {
            out.push_back(id);
        }
    }
    return out;
}

TEST(RunnableIndex, MatchesBruteForceAcrossCrashAndStall) {
    sim::System sys(Protocol::WriteBack);
    const VarId v = sys.memory().allocate("v");
    constexpr int kProcs = 7;
    for (int i = 0; i < kProcs; ++i) {
        sim::Process& p = sys.add_process(sim::Role::Reader);
        p.set_task(ping(p, v, 3 + i));
    }
    EXPECT_TRUE(sys.runnable().empty());  // Nothing started yet.
    sys.start_all();
    EXPECT_EQ(sys.runnable(), brute_force_runnable(sys));

    std::uint64_t salt = 9;
    while (!sys.all_surviving_finished()) {
        const std::vector<ProcId> run = sys.runnable();  // Copy: we mutate.
        ASSERT_FALSE(run.empty());
        // Sprinkle lifecycle transitions over the run.
        if (sys.steps_executed() == 4) {
            sys.process(run.front()).crash();
        }
        if (sys.steps_executed() == 7 && run.size() > 1) {
            sys.process(run.back()).set_stalled(true);
        }
        if (sys.steps_executed() == 11) {
            for (ProcId id = 0; id < sys.num_processes(); ++id) {
                sys.process(id).set_stalled(false);
            }
        }
        const auto fresh = sys.runnable();
        ASSERT_EQ(fresh, brute_force_runnable(sys))
            << "after " << sys.steps_executed() << " steps";
        ASSERT_TRUE(
            std::is_sorted(fresh.begin(), fresh.end()));  // Replay compat.
        if (!fresh.empty()) {
            sys.step(fresh[salt++ % fresh.size()]);
            ASSERT_EQ(sys.runnable(), brute_force_runnable(sys));
        }
    }
    EXPECT_EQ(sys.num_crashed(), 1u);
    EXPECT_FALSE(sys.all_finished());  // One process died mid-task.
    EXPECT_TRUE(sys.runnable().empty());
}

TEST(RunnableIndex, CountsDriveTheExperimentLoopUnderFaults) {
    // End-to-end: full experiments whose driver loop relies on the
    // maintained counters (done_count, crashed_count) instead of scans.
    // A stall is transient -- the run must converge once it expires.
    ExperimentConfig cfg;
    cfg.lock = LockKind::Af;
    cfg.n = 6;
    cfg.m = 2;
    cfg.f = 2;
    cfg.passages = 2;
    cfg.sched = SchedKind::Random;
    cfg.seed = 7;
    cfg.faults.stall(2, Section::Entry, 1, 40);
    const auto stalled = run_experiment(cfg);
    EXPECT_TRUE(stalled.all_surviving_finished);
    EXPECT_EQ(stalled.crashed, 0u);

    // A crash inside entry starves the blocking lock (A_f is not
    // crash-tolerant); the progress checker must flag it and the crashed
    // counter must report exactly the one victim.
    cfg.faults = sim::FaultPlan{};
    cfg.faults.crash(1, Section::Entry, 2);
    cfg.max_steps = 50'000;
    cfg.progress_window = 2'000;
    const auto crashed = run_experiment(cfg);
    EXPECT_FALSE(crashed.all_surviving_finished);
    EXPECT_EQ(crashed.crashed, 1u);
}

}  // namespace
