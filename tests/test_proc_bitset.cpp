// ProcBitset + CacheDirectory: the bitset-backed cache directory that
// replaced the unordered_set sharer sets.
//
// Three layers:
//   1. ProcBitset semantics (grow-on-demand storage, word ops, iteration).
//   2. CacheDirectory transitions, i.e. the Golab et al. protocol rules
//      (quoted in rmr/cache.hpp) exercised directly at the directory level.
//   3. A randomized differential test: the same op sequence driven through
//      rwr::Memory and through an independent reference implementation
//      (unordered_set directory, the pre-bitset representation) must produce
//      identical RMR flags, values, and holder sets under every protocol.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <unordered_set>
#include <vector>

#include "rmr/cache.hpp"
#include "rmr/memory.hpp"
#include "rmr/proc_bitset.hpp"

namespace {

using namespace rwr;

// ---- 1. ProcBitset ------------------------------------------------------

TEST(ProcBitset, StartsEmpty) {
    ProcBitset s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_FALSE(s.test(0));
    EXPECT_FALSE(s.test(1000));  // Beyond storage: false, no growth.
}

TEST(ProcBitset, SetTestResetAcrossWordBoundaries) {
    ProcBitset s;
    for (const ProcId p : {0u, 1u, 63u, 64u, 65u, 127u, 128u, 1000u}) {
        s.set(p);
        EXPECT_TRUE(s.test(p)) << p;
    }
    EXPECT_EQ(s.count(), 8u);
    s.reset(64);
    s.reset(5000);  // Beyond storage: no-op.
    EXPECT_FALSE(s.test(64));
    EXPECT_EQ(s.count(), 7u);
}

TEST(ProcBitset, DoubleSetIsIdempotent) {
    ProcBitset s;
    s.set(7);
    s.set(7);
    EXPECT_EQ(s.count(), 1u);
}

TEST(ProcBitset, ClearKeepsWorking) {
    ProcBitset s(256);
    EXPECT_EQ(s.universe(), 256u);
    s.set(3);
    s.set(200);
    s.clear();
    EXPECT_TRUE(s.empty());
    s.set(200);
    EXPECT_TRUE(s.test(200));
    EXPECT_EQ(s.count(), 1u);
}

TEST(ProcBitset, UnionGrowsToLargerOperand) {
    ProcBitset a;
    a.set(1);
    ProcBitset b;
    b.set(500);
    a |= b;
    EXPECT_TRUE(a.test(1));
    EXPECT_TRUE(a.test(500));
    EXPECT_EQ(a.count(), 2u);
}

TEST(ProcBitset, SubsetToleratesStorageSizeMismatch) {
    ProcBitset small;
    small.set(2);
    ProcBitset big;
    big.set(2);
    big.set(300);
    EXPECT_TRUE(small.subset_of(big));
    EXPECT_FALSE(big.subset_of(small));
    // Trailing zero words on the longer side must not break subset.
    big.reset(300);
    EXPECT_TRUE(big.subset_of(small));
}

TEST(ProcBitset, EqualityIsSemanticNotStorage) {
    ProcBitset a;
    a.set(2);
    ProcBitset b;
    b.set(2);
    b.set(900);
    b.reset(900);  // Same bits as a, much bigger storage.
    EXPECT_EQ(a, b);
    b.set(3);
    EXPECT_FALSE(a == b);
}

TEST(ProcBitset, ForEachVisitsInIncreasingOrder) {
    ProcBitset s;
    const std::vector<ProcId> want = {0, 5, 63, 64, 130, 131, 700};
    for (auto it = want.rbegin(); it != want.rend(); ++it) {
        s.set(*it);  // Insert in reverse to prove ordering is intrinsic.
    }
    std::vector<ProcId> got;
    s.for_each([&got](ProcId p) { got.push_back(p); });
    EXPECT_EQ(got, want);
}

// ---- 2. CacheDirectory transitions --------------------------------------

TEST(CacheDirectory, SharedCopiesAccumulate) {
    CacheDirectory d;
    EXPECT_EQ(d.num_holders(), 0u);
    d.add_shared(1);
    d.add_shared(2);
    d.add_shared(2);  // Re-read by a holder: no double count.
    EXPECT_EQ(d.num_holders(), 2u);
    EXPECT_TRUE(d.holds(1));
    EXPECT_TRUE(d.holds_shared(2));
    EXPECT_FALSE(d.holds(3));
    EXPECT_FALSE(d.has_exclusive());
}

TEST(CacheDirectory, DowngradeMovesExclusiveHolderToShared) {
    CacheDirectory d;
    d.invalidate_others_make_exclusive(4);
    EXPECT_TRUE(d.holds_exclusive(4));
    EXPECT_EQ(d.num_holders(), 1u);
    d.downgrade_and_share(9);
    EXPECT_FALSE(d.has_exclusive());
    EXPECT_TRUE(d.holds_shared(4));  // Old exclusive holder keeps a copy.
    EXPECT_TRUE(d.holds_shared(9));
    EXPECT_EQ(d.num_holders(), 2u);
}

TEST(CacheDirectory, WriteThroughInvalidationSparesTheWriter) {
    CacheDirectory d;
    d.add_shared(1);
    d.add_shared(2);
    d.invalidate_others(1);
    EXPECT_TRUE(d.holds(1));  // Writer's own copy stays valid.
    EXPECT_FALSE(d.holds(2));
    EXPECT_EQ(d.num_holders(), 1u);
}

TEST(CacheDirectory, WriteThroughWriteDoesNotAllocate) {
    CacheDirectory d;
    d.add_shared(2);
    d.invalidate_others(1);  // Writer had no copy: it must not gain one.
    EXPECT_FALSE(d.holds(1));
    EXPECT_EQ(d.num_holders(), 0u);
}

TEST(CacheDirectory, ExclusiveUpgradeInvalidatesEveryoneElse) {
    CacheDirectory d;
    d.add_shared(1);
    d.add_shared(2);
    d.invalidate_others_make_exclusive(2);
    EXPECT_FALSE(d.holds(1));
    EXPECT_TRUE(d.holds_exclusive(2));
    EXPECT_FALSE(d.holds_shared(2));  // Exclusive, not shared.
    EXPECT_EQ(d.num_holders(), 1u);
}

TEST(CacheDirectory, ClearDropsEverything) {
    CacheDirectory d;
    d.add_shared(1);
    d.invalidate_others_make_exclusive(2);
    d.clear();
    EXPECT_EQ(d.num_holders(), 0u);
    EXPECT_FALSE(d.holds(1));
    EXPECT_FALSE(d.holds(2));
    EXPECT_FALSE(d.has_exclusive());
}

// ---- 3. Randomized differential test ------------------------------------
//
// Reference model: the protocol rules implemented over unordered_set -- the
// representation CacheDirectory used before the bitset swap -- written
// independently from memory.cpp so representation bugs can't cancel out.

struct RefDir {
    std::unordered_set<ProcId> sharers;
    std::optional<ProcId> exclusive;

    [[nodiscard]] bool holds(ProcId p) const {
        return exclusive == p || sharers.count(p) > 0;
    }
};

class RefMemory {
   public:
    RefMemory(Protocol proto, std::size_t vars, std::vector<ProcId> owners)
        : proto_(proto), vals_(vars, 0), dirs_(vars),
          owners_(std::move(owners)) {}

    OpResult apply(ProcId p, const Op& op) {
        Word& stored = vals_[op.var.index];
        OpResult res;
        res.value = stored;
        if (op.code == OpCode::Read) {
            res.rmr = ref_read(p, op.var.index);
        } else {
            res.rmr = ref_write(p, op.var.index);
            if (op.code == OpCode::Write) {
                res.nontrivial = stored != op.arg0;
                stored = op.arg0;
            } else if (op.code == OpCode::Cas) {
                if (stored == op.arg0) {
                    res.nontrivial = stored != op.arg1;
                    stored = op.arg1;
                }
            } else {  // FetchAdd
                res.nontrivial = op.arg0 != 0;
                stored = stored + op.arg0;
            }
        }
        total_rmrs_ += res.rmr ? 1 : 0;
        return res;
    }

    [[nodiscard]] bool holds(ProcId p, std::size_t v) const {
        return dirs_[v].holds(p);
    }
    [[nodiscard]] bool holds_exclusive(ProcId p, std::size_t v) const {
        return dirs_[v].exclusive == p;
    }
    [[nodiscard]] std::uint64_t total_rmrs() const { return total_rmrs_; }

   private:
    bool ref_read(ProcId p, std::size_t v) {
        RefDir& d = dirs_[v];
        switch (proto_) {
            case Protocol::WriteThrough:
                if (d.holds(p)) {
                    return false;
                }
                d.sharers.insert(p);
                return true;
            case Protocol::WriteBack:
                if (d.holds(p)) {
                    return false;
                }
                if (d.exclusive) {
                    d.sharers.insert(*d.exclusive);
                    d.exclusive.reset();
                }
                d.sharers.insert(p);
                return true;
            case Protocol::Dsm:
                return owners_[v] != p;
        }
        return true;
    }

    bool ref_write(ProcId p, std::size_t v) {
        RefDir& d = dirs_[v];
        switch (proto_) {
            case Protocol::WriteThrough: {
                const bool had = d.holds(p);
                d.sharers.clear();
                d.exclusive.reset();
                if (had) {
                    d.sharers.insert(p);
                }
                return true;
            }
            case Protocol::WriteBack:
                if (d.exclusive == p) {
                    return false;
                }
                d.sharers.clear();
                d.exclusive = p;
                return true;
            case Protocol::Dsm:
                return owners_[v] != p;
        }
        return true;
    }

    Protocol proto_;
    std::vector<Word> vals_;
    std::vector<RefDir> dirs_;
    std::vector<ProcId> owners_;
    std::uint64_t total_rmrs_ = 0;
};

class DifferentialSweep : public ::testing::TestWithParam<Protocol> {};

TEST_P(DifferentialSweep, RandomOpsMatchReferenceDirectory) {
    const Protocol proto = GetParam();
    constexpr std::uint32_t kProcs = 70;  // Spans >1 bitset word.
    constexpr std::uint32_t kVars = 9;
    constexpr int kOps = 20'000;

    Memory mem(proto);
    std::vector<ProcId> owners;
    std::vector<VarId> vars;
    std::mt19937_64 rng(20260805);
    for (std::uint32_t v = 0; v < kVars; ++v) {
        // Mix owned and unowned homes so Dsm sees both localities.
        const ProcId owner =
            v % 3 == 0 ? Memory::kNoOwner : static_cast<ProcId>(v % kProcs);
        owners.push_back(owner);
        vars.push_back(mem.allocate("v" + std::to_string(v), 0, owner));
    }
    RefMemory ref(proto, kVars, owners);

    for (int i = 0; i < kOps; ++i) {
        const auto p = static_cast<ProcId>(rng() % kProcs);
        const VarId v = vars[rng() % kVars];
        Op op;
        switch (rng() % 4) {
            case 0: op = Op::read(v); break;
            case 1: op = Op::write(v, rng() % 4); break;
            case 2: op = Op::cas(v, rng() % 4, rng() % 4); break;
            default: op = Op::fetch_add(v, rng() % 3); break;
        }
        const OpResult got = mem.apply(p, op);
        const OpResult want = ref.apply(p, op);
        ASSERT_EQ(got.rmr, want.rmr) << "op " << i;
        ASSERT_EQ(got.value, want.value) << "op " << i;
        ASSERT_EQ(got.nontrivial, want.nontrivial) << "op " << i;
    }

    // Same RMR totals and, per (process, variable), the same holder state.
    EXPECT_EQ(mem.total_rmrs(), ref.total_rmrs());
    for (std::uint32_t v = 0; v < kVars; ++v) {
        for (ProcId p = 0; p < kProcs; ++p) {
            ASSERT_EQ(mem.cached(p, vars[v]), ref.holds(p, v))
                << "p=" << p << " v=" << v;
            ASSERT_EQ(mem.cached_exclusive(p, vars[v]),
                      ref.holds_exclusive(p, v))
                << "p=" << p << " v=" << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DifferentialSweep,
                         ::testing::Values(Protocol::WriteThrough,
                                           Protocol::WriteBack,
                                           Protocol::Dsm),
                         [](const auto& info) {
                             switch (info.param) {
                                 case Protocol::WriteThrough:
                                     return std::string("WriteThrough");
                                 case Protocol::WriteBack:
                                     return std::string("WriteBack");
                                 default:
                                     return std::string("Dsm");
                             }
                         });

}  // namespace
