// Tests for the m-process mutual-exclusion substrate (src/mutex): mutual
// exclusion (exhaustive small-schedule search + randomized), deadlock
// freedom, bounded bypass / starvation freedom of the tournament lock, and
// its O(log m) RMR complexity.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "mutex/sim_mutex.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace rwr::mutex {
namespace {

using sim::Process;
using sim::Role;
using sim::SimTask;
using sim::System;

/// Drives `passages` lock/unlock cycles, checking exclusivity with a plain
/// (non-simulated) occupancy counter.
struct MutexHarness {
    int in_cs = 0;
    int max_seen = 0;
    std::uint64_t total_entries = 0;
    std::vector<std::uint64_t> entries_per_slot;
};

SimTask<void> mutex_passages(SimMutex& mx, Process& p, std::uint32_t slot,
                             int passages, MutexHarness* h) {
    for (int k = 0; k < passages; ++k) {
        co_await mx.enter(p, slot);
        h->in_cs += 1;
        h->max_seen = std::max(h->max_seen, h->in_cs);
        h->total_entries += 1;
        h->entries_per_slot[slot] += 1;
        co_await p.local_step();  // Scheduling point inside the CS.
        h->in_cs -= 1;
        co_await mx.exit(p, slot);
    }
}

enum class MutexKind { Tournament, Tas, Mcs };

std::unique_ptr<SimMutex> make_mutex(Memory& mem, MutexKind kind,
                                     std::uint32_t m) {
    if (kind == MutexKind::Tournament) {
        return std::make_unique<TournamentSimMutex>(mem, "mx", m);
    }
    if (kind == MutexKind::Mcs) {
        return std::make_unique<McsSimMutex>(mem, "mx", m);
    }
    return std::make_unique<TasSimMutex>(mem, "mx");
}

class MutexSweep
    : public ::testing::TestWithParam<
          std::tuple<MutexKind, Protocol, std::uint32_t /*m*/,
                     std::uint64_t /*seed*/>> {};

TEST_P(MutexSweep, MutualExclusionAndProgressUnderRandomSchedules) {
    const auto [kind, proto, m, seed] = GetParam();
    System sys(proto);
    auto mx = make_mutex(sys.memory(), kind, m);
    auto h = std::make_unique<MutexHarness>();
    h->entries_per_slot.assign(m, 0);
    constexpr int kPassages = 6;
    for (std::uint32_t s = 0; s < m; ++s) {
        Process& p = sys.add_process(Role::Writer);
        p.set_task(mutex_passages(*mx, p, s, kPassages, h.get()));
    }
    sim::RandomScheduler sched(seed);
    const auto result = sim::run(sys, sched, 5'000'000);
    sys.check_failures();
    ASSERT_TRUE(result.all_finished) << "possible deadlock/livelock";
    EXPECT_EQ(h->max_seen, 1) << "mutual exclusion violated";
    EXPECT_EQ(h->total_entries, static_cast<std::uint64_t>(m) * kPassages);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MutexSweep,
    ::testing::Combine(::testing::Values(MutexKind::Tournament,
                                         MutexKind::Tas, MutexKind::Mcs),
                       ::testing::Values(Protocol::WriteThrough,
                                         Protocol::WriteBack),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u),
                       ::testing::Range<std::uint64_t>(0, 6)));

TEST(TournamentMutex, ExhaustiveSmallSchedules) {
    // Exhaustive DFS over the first 14 scheduling decisions for 2 processes
    // x 2 passages: mutual exclusion must hold on every explored schedule.
    // (Replay-based, so each schedule rebuilds the scenario.)
    struct Shared {
        System sys{Protocol::WriteThrough};
        std::unique_ptr<SimMutex> mx;
        std::unique_ptr<MutexHarness> h;
    };
    long long schedules = 0;
    // Hand-rolled DFS mirroring sim::explore_dfs but asserting on the
    // harness (the generic explorer checks RW sections, not this counter).
    std::vector<std::size_t> prefix;
    std::function<void(int)> dfs = [&](int depth) {
        Shared sh;
        sh.mx = make_mutex(sh.sys.memory(), MutexKind::Tournament, 2);
        sh.h = std::make_unique<MutexHarness>();
        sh.h->entries_per_slot.assign(2, 0);
        for (std::uint32_t s = 0; s < 2; ++s) {
            Process& p = sh.sys.add_process(Role::Writer);
            p.set_task(mutex_passages(*sh.mx, p, s, 2, sh.h.get()));
        }
        sh.sys.start_all();
        for (const auto c : prefix) {
            const auto r = sh.sys.runnable();
            if (r.empty()) break;
            sh.sys.step(r[c % r.size()]);
        }
        const auto width = sh.sys.runnable().size();
        // Finish round-robin and check.
        sim::RoundRobinScheduler rr;
        sim::run(sh.sys, rr, 100'000);
        sh.sys.check_failures();
        ASSERT_EQ(sh.h->max_seen, 1);
        ASSERT_EQ(sh.h->total_entries, 4u);
        ++schedules;
        if (depth == 0 || width <= 1) return;
        for (std::size_t c = 0; c < width; ++c) {
            prefix.push_back(c);
            dfs(depth - 1);
            prefix.pop_back();
        }
    };
    dfs(14);
    EXPECT_GT(schedules, 1000);
}

TEST(TournamentMutex, NoStarvationUnderFairSchedules) {
    // Bounded bypass: with all 4 processes running many passages under a
    // fair random scheduler, every slot completes all its passages.
    System sys(Protocol::WriteBack);
    TournamentSimMutex mx(sys.memory(), "mx", 4);
    auto h = std::make_unique<MutexHarness>();
    h->entries_per_slot.assign(4, 0);
    for (std::uint32_t s = 0; s < 4; ++s) {
        Process& p = sys.add_process(Role::Writer);
        p.set_task(mutex_passages(mx, p, s, 25, h.get()));
    }
    sim::RandomScheduler sched(7);
    ASSERT_TRUE(sim::run(sys, sched, 10'000'000).all_finished);
    for (std::uint32_t s = 0; s < 4; ++s) {
        EXPECT_EQ(h->entries_per_slot[s], 25u);
    }
}

TEST(TournamentMutex, SoloRmrCostIsLogarithmic) {
    // A solo passage costs Theta(log m) RMRs: 3 writes + ~2 reads per level
    // on entry, 1 write per level on exit.
    std::vector<std::uint64_t> rmrs;
    for (const std::uint32_t m : {1u, 2u, 4u, 16u, 64u, 256u}) {
        System sys(Protocol::WriteThrough);
        TournamentSimMutex mx(sys.memory(), "mx", m);
        auto h = std::make_unique<MutexHarness>();
        h->entries_per_slot.assign(m, 0);
        Process& p = sys.add_process(Role::Writer);
        p.set_task(mutex_passages(mx, p, 0, 1, h.get()));
        sim::RoundRobinScheduler rr;
        ASSERT_TRUE(sim::run(sys, rr, 100'000).all_finished);
        rmrs.push_back(p.stats().total_rmrs());
    }
    EXPECT_EQ(rmrs[0], 0u);  // m == 1: empty tree, no shared steps at all.
    // Linear in the number of levels: rmrs for m=2^k is k * per-level cost.
    const auto per_level = rmrs[1];
    EXPECT_EQ(rmrs[2], 2 * per_level);
    EXPECT_EQ(rmrs[3], 4 * per_level);
    EXPECT_EQ(rmrs[4], 6 * per_level);
    EXPECT_EQ(rmrs[5], 8 * per_level);
}

TEST(TournamentMutex, ContendedRmrPerPassageStaysLogarithmic) {
    // Under a fair round-robin with m contenders, the *average* RMR cost
    // per passage stays O(log m) -- the local-spin property: spinning reads
    // hit the cache until the rival writes.
    for (const std::uint32_t m : {2u, 4u, 8u, 16u}) {
        System sys(Protocol::WriteBack);
        TournamentSimMutex mx(sys.memory(), "mx", m);
        auto h = std::make_unique<MutexHarness>();
        h->entries_per_slot.assign(m, 0);
        constexpr int kPassages = 10;
        for (std::uint32_t s = 0; s < m; ++s) {
            Process& p = sys.add_process(Role::Writer);
            p.set_task(mutex_passages(mx, p, s, kPassages, h.get()));
        }
        sim::RoundRobinScheduler rr;
        ASSERT_TRUE(sim::run(sys, rr, 20'000'000).all_finished);
        std::uint64_t total_rmrs = 0;
        for (ProcId id = 0; id < sys.num_processes(); ++id) {
            total_rmrs += sys.process(id).stats().total_rmrs();
        }
        const double per_passage =
            static_cast<double>(total_rmrs) / (m * kPassages);
        const double levels = std::bit_width(m) - 1;
        // Generous constant: ~3 writes + spin invalidations per level.
        EXPECT_LE(per_passage, 14.0 * levels + 6.0)
            << "m=" << m << " per-passage RMRs " << per_passage;
    }
}

TEST(McsMutex, ExhaustiveSmallSchedules) {
    // 2 processes x 2 passages, all interleavings of the first 14 choices:
    // FIFO queue handoff must never break mutual exclusion.
    long long schedules = 0;
    std::vector<std::size_t> prefix;
    std::function<void(int)> dfs = [&](int depth) {
        System sys(Protocol::WriteBack);
        McsSimMutex mx(sys.memory(), "mx", 2);
        auto h = std::make_unique<MutexHarness>();
        h->entries_per_slot.assign(2, 0);
        for (std::uint32_t s = 0; s < 2; ++s) {
            Process& p = sys.add_process(Role::Writer);
            p.set_task(mutex_passages(mx, p, s, 2, h.get()));
        }
        sys.start_all();
        for (const auto c : prefix) {
            const auto r = sys.runnable();
            if (r.empty()) break;
            sys.step(r[c % r.size()]);
        }
        const auto width = sys.runnable().size();
        sim::RoundRobinScheduler rr;
        sim::run(sys, rr, 100'000);
        sys.check_failures();
        ASSERT_EQ(h->max_seen, 1);
        ASSERT_EQ(h->total_entries, 4u);
        ++schedules;
        if (depth == 0 || width <= 1) return;
        for (std::size_t c = 0; c < width; ++c) {
            prefix.push_back(c);
            dfs(depth - 1);
            prefix.pop_back();
        }
    };
    dfs(14);
    EXPECT_GT(schedules, 1000);
}

TEST(McsMutex, LocalSpinUnderDsm) {
    // The MCS claim to fame: with nodes homed at their owners, a waiter
    // spins on its OWN node even under DSM -- RMRs stay bounded while the
    // holder dawdles. (The Peterson tree cannot do this; see bench_dsm.)
    System sys(Protocol::Dsm);
    McsSimMutex mx(sys.memory(), "mx", 2, /*owner_base=*/0);
    auto h = std::make_unique<MutexHarness>();
    h->entries_per_slot.assign(2, 0);
    Process& p0 = sys.add_process(Role::Writer);
    Process& p1 = sys.add_process(Role::Writer);
    p0.set_task(mutex_passages(mx, p0, 0, 1, h.get()));
    p1.set_task(mutex_passages(mx, p1, 1, 1, h.get()));
    sys.start_all();
    // p0 acquires and parks inside the CS (mutex_passages tracks occupancy
    // via the harness, not Process sections).
    int guard = 0;
    while (h->in_cs == 0 && guard++ < 100) {
        sys.step(p0.id());
    }
    ASSERT_EQ(h->in_cs, 1);
    for (int i = 0; i < 500; ++i) {
        sys.step(p1.id());  // p1 spins while p0 sits in the CS.
    }
    // Enqueue (4 remote-ish steps) + local spinning: RMRs must be O(1),
    // not O(spins).
    EXPECT_LE(p1.stats().total_rmrs(), 8u);
    sim::RoundRobinScheduler rr;
    ASSERT_TRUE(sim::run(sys, rr, 100'000).all_finished);
    EXPECT_EQ(h->max_seen, 1);
}

TEST(TasMutex, ContendedRmrPerPassageGrowsWithM) {
    // The contrast: TAS spinning burns RMRs proportional to contention.
    std::vector<double> per_passage;
    for (const std::uint32_t m : {2u, 8u, 32u}) {
        System sys(Protocol::WriteBack);
        TasSimMutex mx(sys.memory(), "mx");
        auto h = std::make_unique<MutexHarness>();
        h->entries_per_slot.assign(m, 0);
        constexpr int kPassages = 8;
        for (std::uint32_t s = 0; s < m; ++s) {
            Process& p = sys.add_process(Role::Writer);
            p.set_task(mutex_passages(mx, p, s, kPassages, h.get()));
        }
        sim::RoundRobinScheduler rr;
        ASSERT_TRUE(sim::run(sys, rr, 20'000'000).all_finished);
        std::uint64_t total_rmrs = 0;
        for (ProcId id = 0; id < sys.num_processes(); ++id) {
            total_rmrs += sys.process(id).stats().total_rmrs();
        }
        per_passage.push_back(static_cast<double>(total_rmrs) /
                              (m * kPassages));
    }
    // Super-logarithmic growth: m x16 should much more than double the cost.
    EXPECT_GT(per_passage[2], 2.0 * per_passage[0]);
}

}  // namespace
}  // namespace rwr::mutex
