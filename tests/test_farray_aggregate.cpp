// Tests for the general f-array aggregate (sum / max / min over K
// single-writer registers): sequential semantics, concurrent propagation
// (the double-refresh argument over non-invertible aggregates), step
// complexity, and quiescent exactness.
#include <gtest/gtest.h>

#include <limits>

#include "counter/sim_farray.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace rwr::counter {
namespace {

using sim::Process;
using sim::Role;
using sim::SimTask;
using sim::System;

SimTask<void> do_updates(FArraySimAggregate& a, Process& p,
                         std::uint32_t slot,
                         std::vector<std::int32_t> values) {
    for (const auto v : values) {
        co_await a.update(p, slot, v);
    }
}

TEST(FArrayAggregate, SequentialMax) {
    System sys(Protocol::WriteBack);
    FArraySimAggregate a(sys.memory(), "mx", 4, AggKind::Max,
                         std::numeric_limits<std::int32_t>::min());
    Process& p = sys.add_process(Role::Reader);
    std::vector<std::int64_t> reads;
    auto body = [](FArraySimAggregate& agg, Process& proc,
                   std::vector<std::int64_t>* out) -> SimTask<void> {
        co_await agg.update(proc, 0, 5);
        out->push_back(co_await agg.read(proc));
        co_await agg.update(proc, 1, 9);
        out->push_back(co_await agg.read(proc));
        co_await agg.update(proc, 1, 2);  // Max shrinks when 9 is replaced.
        out->push_back(co_await agg.read(proc));
    };
    p.set_task(body(a, p, &reads));
    sim::RoundRobinScheduler rr;
    ASSERT_TRUE(sim::run(sys, rr, 10'000).all_finished);
    EXPECT_EQ(reads, (std::vector<std::int64_t>{5, 9, 5}));
}

TEST(FArrayAggregate, SequentialMin) {
    System sys(Protocol::WriteThrough);
    FArraySimAggregate a(sys.memory(), "mn", 3, AggKind::Min,
                         std::numeric_limits<std::int32_t>::max());
    Process& p = sys.add_process(Role::Reader);
    std::vector<std::int64_t> reads;
    auto body = [](FArraySimAggregate& agg, Process& proc,
                   std::vector<std::int64_t>* out) -> SimTask<void> {
        co_await agg.update(proc, 0, 7);
        co_await agg.update(proc, 2, 3);
        out->push_back(co_await agg.read(proc));
        co_await agg.update(proc, 2, 11);
        out->push_back(co_await agg.read(proc));
    };
    p.set_task(body(a, p, &reads));
    sim::RoundRobinScheduler rr;
    ASSERT_TRUE(sim::run(sys, rr, 10'000).all_finished);
    EXPECT_EQ(reads[0], 3);
    EXPECT_EQ(reads[1], 7);
}

TEST(FArrayAggregate, SumMatchesCounterSemantics) {
    // With Sum, update() is overwrite (not add): aggregate = sum of last
    // values per slot.
    System sys(Protocol::WriteBack);
    FArraySimAggregate a(sys.memory(), "s", 4, AggKind::Sum, 0);
    Process& p = sys.add_process(Role::Reader);
    auto body = [](FArraySimAggregate& agg, Process& proc) -> SimTask<void> {
        co_await agg.update(proc, 0, 10);
        co_await agg.update(proc, 0, 4);  // Overwrites, not accumulates.
        co_await agg.update(proc, 3, 6);
    };
    p.set_task(body(a, p));
    sim::RoundRobinScheduler rr;
    ASSERT_TRUE(sim::run(sys, rr, 10'000).all_finished);
    EXPECT_EQ(a.peek_root(sys.memory()), 10);
    EXPECT_EQ(a.peek_exact(sys.memory()), 10);
}

class AggregateConcurrency
    : public ::testing::TestWithParam<
          std::tuple<AggKind, Protocol, std::uint64_t>> {};

TEST_P(AggregateConcurrency, QuiescentRootIsExact) {
    const auto [kind, proto, seed] = GetParam();
    const std::int32_t identity =
        kind == AggKind::Max   ? std::numeric_limits<std::int32_t>::min()
        : kind == AggKind::Min ? std::numeric_limits<std::int32_t>::max()
                               : 0;
    System sys(proto);
    constexpr std::uint32_t K = 6;
    FArraySimAggregate a(sys.memory(), "agg", K, kind, identity);
    for (std::uint32_t s = 0; s < K; ++s) {
        Process& p = sys.add_process(Role::Reader);
        std::vector<std::int32_t> vals;
        for (int i = 0; i < 6; ++i) {
            vals.push_back(static_cast<std::int32_t>(
                (seed * 37 + s * 11 + i * 7) % 100 - 50));
        }
        p.set_task(do_updates(a, p, s, std::move(vals)));
    }
    sim::RandomScheduler sched(seed);
    ASSERT_TRUE(sim::run(sys, sched, 2'000'000).all_finished);
    sys.check_failures();
    // Once quiescent, the propagated root equals the exact aggregate of
    // the final leaf values.
    EXPECT_EQ(a.peek_root(sys.memory()), a.peek_exact(sys.memory()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregateConcurrency,
    ::testing::Combine(::testing::Values(AggKind::Sum, AggKind::Max,
                                         AggKind::Min),
                       ::testing::Values(Protocol::WriteThrough,
                                         Protocol::WriteBack),
                       ::testing::Range<std::uint64_t>(0, 6)));

TEST(FArrayAggregate, ReadsBoundedByExtremes) {
    // For Max with only-growing updates, concurrent reads lie between the
    // initial identity and the largest value ever written.
    System sys(Protocol::WriteBack);
    FArraySimAggregate a(sys.memory(), "mx", 3, AggKind::Max, 0);
    Process& u0 = sys.add_process(Role::Reader);
    Process& u1 = sys.add_process(Role::Reader);
    Process& rd = sys.add_process(Role::Reader);
    u0.set_task(do_updates(a, u0, 0, {1, 3, 5, 7}));
    u1.set_task(do_updates(a, u1, 1, {2, 4, 6, 8}));
    std::vector<std::int64_t> seen;
    auto reader = [](FArraySimAggregate& agg, Process& p,
                     std::vector<std::int64_t>* out) -> SimTask<void> {
        for (int i = 0; i < 10; ++i) {
            out->push_back(co_await agg.read(p));
        }
    };
    rd.set_task(reader(a, rd, &seen));
    sim::RandomScheduler sched(3);
    ASSERT_TRUE(sim::run(sys, sched, 100'000).all_finished);
    std::int64_t prev = 0;
    for (const auto v : seen) {
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 8);
        EXPECT_GE(v, prev);  // Monotone updates => monotone reads.
        prev = v;
    }
}

TEST(FArrayAggregate, UpdateIsLogSteps) {
    for (const std::uint32_t K : {1u, 16u, 256u}) {
        System sys(Protocol::WriteBack);
        FArraySimAggregate a(sys.memory(), "agg", K, AggKind::Max, 0);
        Process& p = sys.add_process(Role::Reader);
        p.set_task(do_updates(a, p, 0, {42}));
        sim::RoundRobinScheduler rr;
        const auto res = sim::run(sys, rr, 10'000);
        ASSERT_TRUE(res.all_finished);
        const std::uint32_t lg =
            K <= 1 ? 0 : static_cast<std::uint32_t>(std::bit_width(K - 1));
        EXPECT_EQ(res.steps, 1 + 4ull * lg);  // 1 leaf write + refreshes.
    }
}

TEST(FArrayAggregate, RejectsBadArgs) {
    System sys(Protocol::WriteBack);
    EXPECT_THROW(FArraySimAggregate(sys.memory(), "x", 0, AggKind::Sum, 0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace rwr::counter
