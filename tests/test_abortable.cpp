// The abortable writer-mutex tier (E18 foundations): JJAmortizedMutex,
// PwRandomizedMutex and AbortableTournamentMutex correctness under
// abort-heavy workloads in CC and DSM, the amortized-RMR ledger's
// reconciliation invariant (sum of episode RMRs == Memory's per-history
// total -- the proof every RMR is charged exactly once), exhaustive
// single-abort-placement exploration with the probe-until-unfired
// discipline (plus the broken-abort mutant proving the sweep has teeth),
// adversary-scheduler determinism, the repeated-trial estimator, and A_f
// running with the new locks as its embedded WL.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>

#include "harness/experiment.hpp"
#include "mutex/abort_experiment.hpp"
#include "mutex/abortable.hpp"
#include "mutex/abortable_tournament.hpp"
#include "mutex/explore_scenario.hpp"
#include "mutex/jj_amortized.hpp"
#include "mutex/pw_randomized.hpp"
#include "mutex/sim_mutex.hpp"
#include "sim/broken_locks.hpp"
#include "sim/explorer.hpp"

namespace rwr::mutex {
namespace {

TEST(AbortControl, DefaultsAndFactories) {
    EXPECT_EQ(AbortControl::never().patience, AbortControl::kNever);
    EXPECT_EQ(AbortControl::after(3).patience, 3u);
    EXPECT_EQ(AbortControl{}.patience, AbortControl::kNever);
}

// ---- Abort-heavy passages + the reconciliation invariant -------------------

struct LockCase {
    const char* label;
    Protocol protocol;
    AbortableMutexBuilder builder;
};

std::vector<LockCase> abortable_cases(std::uint32_t m) {
    std::vector<LockCase> cases;
    cases.push_back({"jj/cc", Protocol::WriteBack, [](Memory& mem) {
                         return std::unique_ptr<SimMutex>(
                             std::make_unique<JJAmortizedMutex>(mem, "jj", 4));
                     }});
    cases.push_back({"jj/dsm", Protocol::Dsm, [](Memory& mem) {
                         JJAmortizedMutex::Options opts;
                         opts.owner_base = ProcId{0};
                         return std::unique_ptr<SimMutex>(
                             std::make_unique<JJAmortizedMutex>(mem, "jj", 4,
                                                                opts));
                     }});
    cases.push_back({"pw/cc", Protocol::WriteBack, [](Memory& mem) {
                         return std::unique_ptr<SimMutex>(
                             std::make_unique<PwRandomizedMutex>(mem, "pw", 4,
                                                                 /*seed=*/7));
                     }});
    cases.push_back({"pw/dsm", Protocol::Dsm, [](Memory& mem) {
                         return std::unique_ptr<SimMutex>(
                             std::make_unique<PwRandomizedMutex>(
                                 mem, "pw", 4, /*seed=*/7, /*delta=*/0,
                                 ProcId{0}));
                     }});
    cases.push_back({"tournament/cc", Protocol::WriteBack, [](Memory& mem) {
                         return std::unique_ptr<SimMutex>(
                             std::make_unique<AbortableTournamentMutex>(
                                 mem, "tournament", 4));
                     }});
    (void)m;
    return cases;
}

TEST(AbortExperiment, AbortHeavyPassagesCompleteAndLedgersReconcile) {
    constexpr std::uint32_t kM = 4;
    constexpr std::uint64_t kPassages = 16;
    for (const LockCase& c : abortable_cases(kM)) {
        AbortExperimentConfig cfg;
        cfg.builder = c.builder;
        cfg.protocol = c.protocol;
        cfg.m = kM;
        cfg.passages = kPassages;
        cfg.cs_steps = 2;
        cfg.workload.abort_rate = 0.5;
        cfg.workload.seed = 11;
        cfg.record_episodes = true;
        const AbortExperimentResult res = run_abort_experiment(cfg);

        EXPECT_TRUE(res.finished) << c.label;
        EXPECT_EQ(res.me_violations, 0u) << c.label;
        EXPECT_EQ(res.amortized.passages, std::uint64_t{kM} * kPassages)
            << c.label;
        // Half the attempts draw a small patience: aborts must occur, and
        // every abort implies a retry episode on top of its passage.
        EXPECT_GT(res.amortized.aborted_episodes, 0u) << c.label;
        EXPECT_EQ(res.amortized.episodes,
                  res.amortized.passages + res.amortized.aborted_episodes)
            << c.label;
        EXPECT_GT(res.amortized.abort_rmr_max, 0u) << c.label;
        EXPECT_GE(res.amortized.episode_rmrs, res.amortized.abort_rmrs)
            << c.label;

        // Reconciliation: the per-episode ledger and the Memory-side
        // per-history total must charge exactly the same RMRs (remainder
        // beats between episodes are local steps, 0 RMRs).
        EXPECT_EQ(res.amortized.episode_rmrs, res.memory_rmrs) << c.label;
        ASSERT_EQ(res.episodes.size(), res.amortized.episodes) << c.label;
        std::uint64_t sum = 0;
        std::uint64_t aborted = 0;
        for (const AbortEpisode& e : res.episodes) {
            sum += e.rmrs;
            aborted += e.aborted ? 1 : 0;
        }
        EXPECT_EQ(sum, res.amortized.episode_rmrs) << c.label;
        EXPECT_EQ(aborted, res.amortized.aborted_episodes) << c.label;
        const std::uint64_t proc_sum = std::accumulate(
            res.proc_rmrs.begin(), res.proc_rmrs.end(), std::uint64_t{0});
        EXPECT_EQ(proc_sum, res.memory_rmrs) << c.label;
    }
}

TEST(AbortExperiment, ZeroAbortRateNeverAborts) {
    AbortExperimentConfig cfg;
    cfg.builder = [](Memory& mem) {
        return std::unique_ptr<SimMutex>(
            std::make_unique<JJAmortizedMutex>(mem, "jj", 3));
    };
    cfg.m = 3;
    cfg.passages = 8;
    const AbortExperimentResult res = run_abort_experiment(cfg);
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.me_violations, 0u);
    EXPECT_EQ(res.amortized.aborted_episodes, 0u);
    EXPECT_EQ(res.amortized.episodes, res.amortized.passages);
    EXPECT_EQ(res.amortized.abort_rmr_max, 0u);
}

TEST(AbortExperiment, NonAbortableBuildersRideTheGridBlocking) {
    // A plain SimMutex builder must work with abort_rate > 0: the rate is
    // ignored (blocking enter), which is how the growth baselines share
    // the E18 grid.
    AbortExperimentConfig cfg;
    cfg.builder = [](Memory& mem) {
        return std::unique_ptr<SimMutex>(
            std::make_unique<TournamentSimMutex>(mem, "wl", 3));
    };
    cfg.m = 3;
    cfg.passages = 8;
    cfg.workload.abort_rate = 0.9;
    const AbortExperimentResult res = run_abort_experiment(cfg);
    EXPECT_TRUE(res.finished);
    EXPECT_EQ(res.me_violations, 0u);
    EXPECT_EQ(res.amortized.aborted_episodes, 0u);
    EXPECT_EQ(res.amortized.passages, 24u);
}

// ---- Adversary schedulers: ME + bit-identical reruns -----------------------

TEST(AbortExperiment, AdversarySchedulersAreDeterministicAndSafe) {
    for (const AbortSched sched :
         {AbortSched::RoundRobin, AbortSched::ObliviousRandom,
          AbortSched::AdaptiveRmr}) {
        AbortExperimentConfig cfg;
        cfg.builder = [](Memory& mem) {
            return std::unique_ptr<SimMutex>(
                std::make_unique<PwRandomizedMutex>(mem, "pw", 4, /*seed=*/3));
        };
        cfg.m = 4;
        cfg.passages = 8;
        cfg.workload.abort_rate = 0.4;
        cfg.workload.seed = 5;
        cfg.sched = sched;
        cfg.sched_seed = 21;
        const AbortExperimentResult a = run_abort_experiment(cfg);
        const AbortExperimentResult b = run_abort_experiment(cfg);
        const char* label = to_string(sched);
        EXPECT_TRUE(a.finished) << label;
        EXPECT_EQ(a.me_violations, 0u) << label;
        // Same config, same seeds: bit-identical ledger and step count.
        EXPECT_EQ(a.steps, b.steps) << label;
        EXPECT_EQ(a.amortized.episodes, b.amortized.episodes) << label;
        EXPECT_EQ(a.amortized.aborted_episodes, b.amortized.aborted_episodes)
            << label;
        EXPECT_EQ(a.amortized.episode_rmrs, b.amortized.episode_rmrs)
            << label;
        EXPECT_EQ(a.memory_rmrs, b.memory_rmrs) << label;
    }
}

TEST(AbortExperiment, TrialEstimatorIsDeterministic) {
    const auto make_cfg = [](std::uint64_t trial_seed) {
        AbortExperimentConfig cfg;
        cfg.builder = [trial_seed](Memory& mem) {
            return std::unique_ptr<SimMutex>(std::make_unique<PwRandomizedMutex>(
                mem, "pw", 4, /*seed=*/trial_seed));
        };
        cfg.m = 4;
        cfg.passages = 8;
        cfg.workload.abort_rate = 0.5;
        cfg.workload.seed = trial_seed;
        cfg.sched = AbortSched::ObliviousRandom;
        cfg.sched_seed = trial_seed;
        return cfg;
    };
    const TrialStats a = estimate_expected_amortized(make_cfg, 5, 9);
    const TrialStats b = estimate_expected_amortized(make_cfg, 5, 9);
    EXPECT_EQ(a.trials, 5u);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
    EXPECT_EQ(a.ci95, b.ci95);
    EXPECT_EQ(a.worst, b.worst);
    EXPECT_EQ(a.worst_trial, b.worst_trial);
    EXPECT_GT(a.mean, 0.0);
    EXPECT_GE(a.worst, a.mean);
    EXPECT_GE(a.ci95, 0.0);
}

// ---- Exhaustive single-abort placement (satellite 1) -----------------------

struct SweepOutcome {
    std::uint64_t fired_placements = 0;  ///< Placements whose abort fired.
    std::uint64_t violations = 0;
    std::uint64_t incomplete = 0;  ///< Deadlocked runs (mutant symptom).
};

/// Probes patience j = 0, 1, 2, ... For each j, every schedule (DPOR'd) of
/// m writers with slot 0's first attempt impatient-after-j is explored; the
/// sweep stops at the first j whose abort never fires in any schedule --
/// past the last reachable abort point, larger patience only shrinks
/// coverage. Exactly the crash adversary's probe-until-unfired discipline.
/// With expect_clean, every placement must explore with zero violations,
/// zero deadlocks and zero truncations; the mutant test instead inspects
/// the accumulated outcome.
SweepOutcome sweep_abort_placements(const AbortableMutexFactory& builder,
                                    std::uint32_t m, std::uint64_t passages,
                                    std::uint64_t cs_steps, const char* label,
                                    bool expect_clean) {
    SweepOutcome out;
    for (std::uint64_t j = 0;; ++j) {
        auto fired = std::make_shared<std::atomic<std::uint64_t>>(0);
        const auto factory = abortable_mutex_scenario_factory(
            builder, m, passages, cs_steps, /*aborter_slot=*/0, j, fired);
        sim::ExploreOptions opt;
        opt.branch_depth = 10;
        opt.finish_budget = 50'000;
        opt.reduce = true;
        const sim::ExploreResult res = sim::explore(factory, opt);
        out.violations += res.violations;
        out.incomplete += res.incomplete_runs;
        EXPECT_EQ(res.truncated_runs, 0u) << label << " patience " << j;
        if (expect_clean) {
            EXPECT_EQ(res.violations, 0u) << label << " patience " << j;
            EXPECT_EQ(res.incomplete_runs, 0u) << label << " patience " << j;
        }
        if (fired->load(std::memory_order_relaxed) == 0) {
            return out;
        }
        ++out.fired_placements;
        // A runaway sweep means patience never stops firing -- the step
        // counting is broken; fail loudly instead of spinning.
        EXPECT_LT(j, 200u) << label;
        if (j >= 200) {
            return out;
        }
    }
}

TEST(AbortPlacement, JJEveryPlacementKeepsMutualExclusion) {
    const SweepOutcome out = sweep_abort_placements(
        [](Memory& mem, std::uint32_t m) {
            return std::unique_ptr<AbortableSimMutex>(
                std::make_unique<JJAmortizedMutex>(mem, "jj", m));
        },
        2, /*passages=*/2, /*cs_steps=*/1, "jj", /*expect_clean=*/true);
    EXPECT_EQ(out.violations, 0u);
    // The sweep must have covered real abort points.
    EXPECT_GT(out.fired_placements, 0u);
}

TEST(AbortPlacement, TournamentEveryPlacementKeepsMutualExclusion) {
    const SweepOutcome out = sweep_abort_placements(
        [](Memory& mem, std::uint32_t m) {
            return std::unique_ptr<AbortableSimMutex>(
                std::make_unique<AbortableTournamentMutex>(mem, "tournament",
                                                           m));
        },
        2, /*passages=*/2, /*cs_steps=*/1, "tournament",
        /*expect_clean=*/true);
    EXPECT_EQ(out.violations, 0u);
    EXPECT_GT(out.fired_placements, 0u);
}

TEST(AbortPlacement, PwEveryPlacementKeepsMutualExclusion) {
    const SweepOutcome out = sweep_abort_placements(
        [](Memory& mem, std::uint32_t m) {
            return std::unique_ptr<AbortableSimMutex>(
                std::make_unique<PwRandomizedMutex>(mem, "pw", m, /*seed=*/7));
        },
        2, /*passages=*/2, /*cs_steps=*/1, "pw", /*expect_clean=*/true);
    EXPECT_EQ(out.violations, 0u);
    EXPECT_GT(out.fired_placements, 0u);
}

TEST(AbortPlacement, BrokenAbortMutantIsCaught) {
    // The teeth check: a mutant whose abort "helpfully" advances the grant
    // cursor past its own ticket licenses the next claimant while the
    // holder is still inside -- the placement sweep must find a violating
    // schedule at SOME placement (and only abort-firing schedules can
    // misbehave, which is exactly what makes the sweep the right net).
    // The CS is widened so the holder is still inside while the aborter
    // re-claims off the corrupted cursor; with a 1-step CS the corruption
    // still surfaces, but as deadlock (grant cursor skipping a live
    // ticket) rather than overlap.
    const SweepOutcome out = sweep_abort_placements(
        [](Memory& mem, std::uint32_t m) {
            return std::unique_ptr<AbortableSimMutex>(
                std::make_unique<sim::BrokenAbortTicketMutex>(mem, "broken",
                                                              m));
        },
        2, /*passages=*/1, /*cs_steps=*/20, "broken-abort",
        /*expect_clean=*/false);
    EXPECT_GT(out.violations, 0u);
}

// ---- A_f integration: the new locks as the embedded WL ---------------------

TEST(AfIntegration, JjAndPwWlKindsKeepMutualExclusion) {
    for (const core::WlKind wl :
         {core::WlKind::JjAmortized, core::WlKind::PwRandomized,
          core::WlKind::YaTournament}) {
        for (const bool dsm : {false, true}) {
            for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
                harness::ExperimentConfig cfg;
                cfg.lock = dsm ? harness::LockKind::AfDsm
                               : harness::LockKind::Af;
                cfg.protocol = dsm ? Protocol::Dsm : Protocol::WriteBack;
                cfg.n = 3;
                cfg.m = 3;
                cfg.f = 2;
                cfg.wl = wl;
                cfg.wl_seed = 5;
                cfg.passages = 3;
                cfg.sched = harness::SchedKind::Random;
                cfg.seed = seed;
                const harness::ExperimentResult res =
                    harness::run_experiment(cfg);
                EXPECT_TRUE(res.finished)
                    << core::to_string(wl) << " dsm=" << dsm << " seed "
                    << seed;
                EXPECT_EQ(res.me_violations, 0u)
                    << core::to_string(wl) << " dsm=" << dsm << " seed "
                    << seed;
            }
        }
    }
}

TEST(AfIntegration, DefaultWlKindKeepsHistoricConfigsBitIdentical) {
    // WlKind::PetersonTournament is the default everywhere: a config that
    // never mentions wl_kind must produce exactly the numbers it always
    // did. Guarded by comparing against an explicitly-defaulted twin.
    harness::ExperimentConfig base;
    base.n = 4;
    base.m = 2;
    base.f = 2;
    base.passages = 4;
    base.sched = harness::SchedKind::Random;
    base.seed = 7;
    harness::ExperimentConfig twin = base;
    twin.wl = core::WlKind::PetersonTournament;
    twin.wl_seed = 1;
    const auto a = harness::run_experiment(base);
    const auto b = harness::run_experiment(twin);
    EXPECT_EQ(a.steps, b.steps);
    EXPECT_EQ(a.writers.mean_passage_rmrs, b.writers.mean_passage_rmrs);
    EXPECT_EQ(a.readers.mean_passage_rmrs, b.readers.mean_passage_rmrs);
}

}  // namespace
}  // namespace rwr::mutex
