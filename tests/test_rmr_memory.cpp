// Unit tests for the cache-coherent memory model (src/rmr).
//
// Each clause of the protocol definitions quoted in the paper's Section 2
// gets a test: read hits/misses, write invalidation, exclusive-mode upgrade
// and downgrade, and CAS triviality semantics.
#include <gtest/gtest.h>

#include "rmr/memory.hpp"

namespace rwr {
namespace {

TEST(MemoryBasics, AllocateAndPeek) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 42);
    EXPECT_EQ(mem.peek(v), 42u);
    EXPECT_EQ(mem.num_variables(), 1u);
    EXPECT_EQ(mem.name(v), "v");
}

TEST(MemoryBasics, ReadReturnsValueAndWriteStores) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 7);
    auto r = mem.apply(0, Op::read(v));
    EXPECT_EQ(r.value, 7u);
    mem.apply(0, Op::write(v, 9));
    EXPECT_EQ(mem.peek(v), 9u);
}

TEST(MemoryBasics, LocalOpRejected) {
    Memory mem(Protocol::WriteThrough);
    EXPECT_THROW(mem.apply(0, Op::local()), std::logic_error);
}

TEST(MemoryBasics, InvalidVarRejected) {
    Memory mem(Protocol::WriteThrough);
    EXPECT_THROW(mem.apply(0, Op::read(VarId{5})), std::out_of_range);
}

// --- Write-through protocol ------------------------------------------------

TEST(WriteThrough, FirstReadIsRmrSecondIsHit) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);   // Miss: creates cached copy.
    EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);  // Hit.
    EXPECT_TRUE(mem.cached(0, v));
}

TEST(WriteThrough, WriteAlwaysRmr) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    EXPECT_TRUE(mem.apply(0, Op::write(v, 1)).rmr);
    EXPECT_TRUE(mem.apply(0, Op::write(v, 2)).rmr);  // Even back-to-back.
}

TEST(WriteThrough, WriteInvalidatesOtherCopies) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));
    mem.apply(1, Op::read(v));
    EXPECT_FALSE(mem.apply(1, Op::read(v)).rmr);  // p1 holds a copy.
    mem.apply(2, Op::write(v, 5));                // Invalidates p0 and p1.
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);
    EXPECT_TRUE(mem.apply(1, Op::read(v)).rmr);
    EXPECT_EQ(mem.peek(v), 5u);
}

TEST(WriteThrough, WriteDoesNotCreateACopy) {
    // No write-allocate: "invalidates all other cached copies" -- a write
    // refreshes the writer's own copy only if it already has one.
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::write(v, 5));
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);  // Still a miss.
}

TEST(WriteThrough, WriterWithExistingCopyKeepsIt) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));                    // p0 gains a copy.
    mem.apply(0, Op::write(v, 5));                // Keeps (refreshes) it.
    EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);  // Hit.
}

// --- Write-back protocol ---------------------------------------------------

TEST(WriteBack, WriteHitOnExclusiveIsFree) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    EXPECT_TRUE(mem.apply(0, Op::write(v, 1)).rmr);   // Acquire exclusive.
    EXPECT_FALSE(mem.apply(0, Op::write(v, 2)).rmr);  // Exclusive hit.
    EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);      // Read hit too.
    EXPECT_TRUE(mem.cached_exclusive(0, v));
}

TEST(WriteBack, ReadDowngradesExclusiveHolder) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::write(v, 1));                   // p0 exclusive.
    EXPECT_TRUE(mem.apply(1, Op::read(v)).rmr);      // Downgrade + share.
    EXPECT_FALSE(mem.cached_exclusive(0, v));        // p0 now shared...
    EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);     // ...but still valid.
    EXPECT_TRUE(mem.apply(0, Op::write(v, 2)).rmr);  // Upgrade costs an RMR.
}

TEST(WriteBack, WriteInvalidatesAllSharers) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));
    mem.apply(1, Op::read(v));
    mem.apply(2, Op::write(v, 9));  // Invalidates p0, p1; p2 exclusive.
    EXPECT_TRUE(mem.cached_exclusive(2, v));
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);
    EXPECT_TRUE(mem.apply(1, Op::read(v)).rmr);
    // The reads downgraded p2: its next write is an RMR again.
    EXPECT_TRUE(mem.apply(2, Op::write(v, 10)).rmr);
}

TEST(WriteBack, RepeatedSharedReadsAreFree) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);
    }
}

// --- CAS semantics (paper Section 2) ----------------------------------------

TEST(CasSemantics, ReturnsPriorValueAndSwapsOnMatch) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 10);
    auto r = mem.apply(0, Op::cas(v, 10, 20));
    EXPECT_EQ(r.value, 10u);  // "returns the value of v prior to application"
    EXPECT_TRUE(r.nontrivial);
    EXPECT_EQ(mem.peek(v), 20u);
}

TEST(CasSemantics, FailedCasIsTrivial) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 10);
    auto r = mem.apply(0, Op::cas(v, 99, 20));
    EXPECT_EQ(r.value, 10u);
    EXPECT_FALSE(r.nontrivial);
    EXPECT_EQ(mem.peek(v), 10u);
}

TEST(CasSemantics, SuccessfulCasToSameValueIsTrivial) {
    // A step is trivial "if it does not change the value of the variable".
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 10);
    auto r = mem.apply(0, Op::cas(v, 10, 10));
    EXPECT_FALSE(r.nontrivial);
}

TEST(CasSemantics, WriteOfSameValueIsTrivial) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v", 3);
    EXPECT_FALSE(mem.apply(0, Op::write(v, 3)).nontrivial);
    EXPECT_TRUE(mem.apply(0, Op::write(v, 4)).nontrivial);
}

TEST(CasSemantics, CasCountsAsWriteForCoherence) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));                        // p0 shared.
    EXPECT_TRUE(mem.apply(1, Op::cas(v, 0, 1)).rmr);  // p1 takes exclusive.
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);       // p0 was invalidated.
    // A CAS on an exclusively-held line is free in write-back.
    mem.apply(1, Op::cas(v, 1, 2));  // Re-acquire exclusive (p0's read downgraded).
    EXPECT_FALSE(mem.apply(1, Op::cas(v, 2, 3)).rmr);
}

// --- DSM model (Discussion section; experiment E11) -------------------------

TEST(Dsm, OwnerAccessesAreLocal) {
    Memory mem(Protocol::Dsm);
    const VarId v = mem.allocate("v", 0, /*owner=*/3);
    EXPECT_FALSE(mem.apply(3, Op::read(v)).rmr);
    EXPECT_FALSE(mem.apply(3, Op::write(v, 1)).rmr);
    EXPECT_FALSE(mem.apply(3, Op::cas(v, 1, 2)).rmr);
}

TEST(Dsm, RemoteAccessesAlwaysRmr) {
    Memory mem(Protocol::Dsm);
    const VarId v = mem.allocate("v", 0, /*owner=*/3);
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);  // No caching: every time.
    EXPECT_TRUE(mem.apply(0, Op::write(v, 1)).rmr);
}

TEST(Dsm, UnownedVariablesAreRemoteToEveryone) {
    Memory mem(Protocol::Dsm);
    const VarId v = mem.allocate("v");
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);
    EXPECT_TRUE(mem.apply(7, Op::read(v)).rmr);
}

TEST(Dsm, RehomingChangesLocality) {
    Memory mem(Protocol::Dsm);
    const VarId v = mem.allocate("v", 0, 1);
    EXPECT_FALSE(mem.apply(1, Op::read(v)).rmr);
    mem.set_owner(v, 2);
    EXPECT_TRUE(mem.apply(1, Op::read(v)).rmr);
    EXPECT_FALSE(mem.apply(2, Op::read(v)).rmr);
}

// --- Fetch-and-add (baseline primitive) -------------------------------------

TEST(FetchAdd, AddsAndReturnsPrior) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 5);
    auto r = mem.apply(0, Op::fetch_add(v, 3));
    EXPECT_EQ(r.value, 5u);
    EXPECT_EQ(mem.peek(v), 8u);
    EXPECT_TRUE(r.nontrivial);
    // Delta 0 is trivial.
    EXPECT_FALSE(mem.apply(0, Op::fetch_add(v, 0)).nontrivial);
}

TEST(FetchAdd, NegativeDeltaViaTwosComplement) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 5);
    mem.apply(0, Op::fetch_add(v, static_cast<Word>(-2)));
    EXPECT_EQ(mem.peek(v), 3u);
}

// --- Accounting --------------------------------------------------------------

TEST(Accounting, TotalsAccumulate) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));   // RMR
    mem.apply(0, Op::read(v));   // hit
    mem.apply(1, Op::write(v, 1));  // RMR
    EXPECT_EQ(mem.total_steps(), 3u);
    EXPECT_EQ(mem.total_rmrs(), 2u);
}

TEST(Accounting, PerProcessCountersSumToTotal) {
    // The per-ProcId breakdown is the same events total_rmrs_ counts,
    // bucketed -- under every protocol, across every op code.
    for (const Protocol proto : {Protocol::WriteThrough, Protocol::WriteBack,
                                 Protocol::Dsm}) {
        Memory mem(proto);
        const VarId a = mem.allocate("a", 0, /*owner=*/2);
        const VarId b = mem.allocate("b");
        mem.apply(0, Op::read(a));
        mem.apply(0, Op::read(a));
        mem.apply(1, Op::write(a, 1));
        mem.apply(2, Op::cas(a, 1, 2));
        mem.apply(3, Op::fetch_add(b, 5));
        mem.apply(3, Op::read(b));
        std::uint64_t sum = 0;
        for (ProcId p = 0; p < 4; ++p) {
            sum += mem.rmrs_by(p);
        }
        EXPECT_EQ(sum, mem.total_rmrs()) << to_string(proto);
        for (const auto c : mem.proc_rmrs()) {
            sum -= c;
        }
        EXPECT_EQ(sum, 0u) << to_string(proto);
    }
}

TEST(Accounting, RmrsByNeverTouchedPidIsZero) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));
    EXPECT_EQ(mem.rmrs_by(0), 1u);
    EXPECT_EQ(mem.rmrs_by(17), 0u);  // Beyond the grown vector: still 0.
}

TEST(Dsm, RemoteIffNotHomeAcrossAllOpCodes) {
    // The DSM rule has no per-op exceptions: read, write, CAS (successful,
    // failed and trivial) and fetch&add are each local at the home and an
    // RMR everywhere else.
    Memory mem(Protocol::Dsm);
    const VarId v = mem.allocate("v", 0, /*owner=*/1);
    const auto ops_local = {Op::read(v), Op::write(v, 1), Op::cas(v, 1, 2),
                            Op::cas(v, 99, 5), Op::cas(v, 2, 2),
                            Op::fetch_add(v, 3), Op::fetch_add(v, 0)};
    for (const auto& op : ops_local) {
        EXPECT_FALSE(mem.apply(1, op).rmr);
    }
    for (const auto& op : ops_local) {
        EXPECT_TRUE(mem.apply(0, op).rmr);
    }
    EXPECT_EQ(mem.rmrs_by(1), 0u);
    EXPECT_EQ(mem.rmrs_by(0), 7u);
}

TEST(Dsm, SetOwnerRehomingSplitsThePerProcessLedger) {
    // Re-homing mid-history flips which side of the per-process ledger the
    // subsequent accesses land on; past counts are never rewritten.
    Memory mem(Protocol::Dsm);
    const VarId v = mem.allocate("v", 0, 1);
    mem.apply(1, Op::read(v));  // Local.
    mem.apply(2, Op::read(v));  // Remote.
    mem.set_owner(v, 2);
    mem.apply(1, Op::read(v));  // Now remote.
    mem.apply(2, Op::write(v, 1));  // Now local.
    mem.set_owner(v, Memory::kNoOwner);
    mem.apply(1, Op::read(v));  // Unowned: remote to everyone.
    mem.apply(2, Op::read(v));
    EXPECT_EQ(mem.rmrs_by(1), 2u);
    EXPECT_EQ(mem.rmrs_by(2), 2u);
    EXPECT_EQ(mem.total_rmrs(), 4u);
}

TEST(Dsm, EvictAllIsANoOpUnderDsm) {
    // Regression (crash-restart under DSM): System's crash handling evicts
    // the victim's cache, but the DSM model HAS no caches -- a crash must
    // leave the RMR trajectory bit-identical to a crash-free history of
    // the same ops. Before the early-return, evict_all walked directories
    // that were never populated; harmless then, but any future
    // directory-coupled state would have made crashes change DSM counts.
    const auto trajectory = [](bool crash_between) {
        Memory mem(Protocol::Dsm);
        const VarId v = mem.allocate("v", 0, /*owner=*/0);
        const VarId w = mem.allocate("w");
        std::vector<bool> rmrs;
        const auto ops = {Op::read(v), Op::write(w, 1), Op::cas(v, 0, 1),
                          Op::fetch_add(w, 2), Op::read(w)};
        for (const auto& op : ops) {
            rmrs.push_back(mem.apply(0, op).rmr);
            if (crash_between) {
                mem.evict_all(0);  // Crash-restart hook, every step.
            }
        }
        rmrs.push_back(mem.total_rmrs() == mem.rmrs_by(0));
        return rmrs;
    };
    EXPECT_EQ(trajectory(false), trajectory(true));
}

TEST(WriteBack, EvictAllStillEvictsUnderCoherence) {
    // The control for the DSM early-return: under write-back the same call
    // must keep costing the victim its copies.
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));
    EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);  // Cached.
    mem.evict_all(0);
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);  // Copy gone: miss again.
}

}  // namespace
}  // namespace rwr
