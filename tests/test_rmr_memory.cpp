// Unit tests for the cache-coherent memory model (src/rmr).
//
// Each clause of the protocol definitions quoted in the paper's Section 2
// gets a test: read hits/misses, write invalidation, exclusive-mode upgrade
// and downgrade, and CAS triviality semantics.
#include <gtest/gtest.h>

#include "rmr/memory.hpp"

namespace rwr {
namespace {

TEST(MemoryBasics, AllocateAndPeek) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 42);
    EXPECT_EQ(mem.peek(v), 42u);
    EXPECT_EQ(mem.num_variables(), 1u);
    EXPECT_EQ(mem.name(v), "v");
}

TEST(MemoryBasics, ReadReturnsValueAndWriteStores) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 7);
    auto r = mem.apply(0, Op::read(v));
    EXPECT_EQ(r.value, 7u);
    mem.apply(0, Op::write(v, 9));
    EXPECT_EQ(mem.peek(v), 9u);
}

TEST(MemoryBasics, LocalOpRejected) {
    Memory mem(Protocol::WriteThrough);
    EXPECT_THROW(mem.apply(0, Op::local()), std::logic_error);
}

TEST(MemoryBasics, InvalidVarRejected) {
    Memory mem(Protocol::WriteThrough);
    EXPECT_THROW(mem.apply(0, Op::read(VarId{5})), std::out_of_range);
}

// --- Write-through protocol ------------------------------------------------

TEST(WriteThrough, FirstReadIsRmrSecondIsHit) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);   // Miss: creates cached copy.
    EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);  // Hit.
    EXPECT_TRUE(mem.cached(0, v));
}

TEST(WriteThrough, WriteAlwaysRmr) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    EXPECT_TRUE(mem.apply(0, Op::write(v, 1)).rmr);
    EXPECT_TRUE(mem.apply(0, Op::write(v, 2)).rmr);  // Even back-to-back.
}

TEST(WriteThrough, WriteInvalidatesOtherCopies) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));
    mem.apply(1, Op::read(v));
    EXPECT_FALSE(mem.apply(1, Op::read(v)).rmr);  // p1 holds a copy.
    mem.apply(2, Op::write(v, 5));                // Invalidates p0 and p1.
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);
    EXPECT_TRUE(mem.apply(1, Op::read(v)).rmr);
    EXPECT_EQ(mem.peek(v), 5u);
}

TEST(WriteThrough, WriteDoesNotCreateACopy) {
    // No write-allocate: "invalidates all other cached copies" -- a write
    // refreshes the writer's own copy only if it already has one.
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::write(v, 5));
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);  // Still a miss.
}

TEST(WriteThrough, WriterWithExistingCopyKeepsIt) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));                    // p0 gains a copy.
    mem.apply(0, Op::write(v, 5));                // Keeps (refreshes) it.
    EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);  // Hit.
}

// --- Write-back protocol ---------------------------------------------------

TEST(WriteBack, WriteHitOnExclusiveIsFree) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    EXPECT_TRUE(mem.apply(0, Op::write(v, 1)).rmr);   // Acquire exclusive.
    EXPECT_FALSE(mem.apply(0, Op::write(v, 2)).rmr);  // Exclusive hit.
    EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);      // Read hit too.
    EXPECT_TRUE(mem.cached_exclusive(0, v));
}

TEST(WriteBack, ReadDowngradesExclusiveHolder) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::write(v, 1));                   // p0 exclusive.
    EXPECT_TRUE(mem.apply(1, Op::read(v)).rmr);      // Downgrade + share.
    EXPECT_FALSE(mem.cached_exclusive(0, v));        // p0 now shared...
    EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);     // ...but still valid.
    EXPECT_TRUE(mem.apply(0, Op::write(v, 2)).rmr);  // Upgrade costs an RMR.
}

TEST(WriteBack, WriteInvalidatesAllSharers) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));
    mem.apply(1, Op::read(v));
    mem.apply(2, Op::write(v, 9));  // Invalidates p0, p1; p2 exclusive.
    EXPECT_TRUE(mem.cached_exclusive(2, v));
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);
    EXPECT_TRUE(mem.apply(1, Op::read(v)).rmr);
    // The reads downgraded p2: its next write is an RMR again.
    EXPECT_TRUE(mem.apply(2, Op::write(v, 10)).rmr);
}

TEST(WriteBack, RepeatedSharedReadsAreFree) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(mem.apply(0, Op::read(v)).rmr);
    }
}

// --- CAS semantics (paper Section 2) ----------------------------------------

TEST(CasSemantics, ReturnsPriorValueAndSwapsOnMatch) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 10);
    auto r = mem.apply(0, Op::cas(v, 10, 20));
    EXPECT_EQ(r.value, 10u);  // "returns the value of v prior to application"
    EXPECT_TRUE(r.nontrivial);
    EXPECT_EQ(mem.peek(v), 20u);
}

TEST(CasSemantics, FailedCasIsTrivial) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 10);
    auto r = mem.apply(0, Op::cas(v, 99, 20));
    EXPECT_EQ(r.value, 10u);
    EXPECT_FALSE(r.nontrivial);
    EXPECT_EQ(mem.peek(v), 10u);
}

TEST(CasSemantics, SuccessfulCasToSameValueIsTrivial) {
    // A step is trivial "if it does not change the value of the variable".
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 10);
    auto r = mem.apply(0, Op::cas(v, 10, 10));
    EXPECT_FALSE(r.nontrivial);
}

TEST(CasSemantics, WriteOfSameValueIsTrivial) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v", 3);
    EXPECT_FALSE(mem.apply(0, Op::write(v, 3)).nontrivial);
    EXPECT_TRUE(mem.apply(0, Op::write(v, 4)).nontrivial);
}

TEST(CasSemantics, CasCountsAsWriteForCoherence) {
    Memory mem(Protocol::WriteBack);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));                        // p0 shared.
    EXPECT_TRUE(mem.apply(1, Op::cas(v, 0, 1)).rmr);  // p1 takes exclusive.
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);       // p0 was invalidated.
    // A CAS on an exclusively-held line is free in write-back.
    mem.apply(1, Op::cas(v, 1, 2));  // Re-acquire exclusive (p0's read downgraded).
    EXPECT_FALSE(mem.apply(1, Op::cas(v, 2, 3)).rmr);
}

// --- DSM model (Discussion section; experiment E11) -------------------------

TEST(Dsm, OwnerAccessesAreLocal) {
    Memory mem(Protocol::Dsm);
    const VarId v = mem.allocate("v", 0, /*owner=*/3);
    EXPECT_FALSE(mem.apply(3, Op::read(v)).rmr);
    EXPECT_FALSE(mem.apply(3, Op::write(v, 1)).rmr);
    EXPECT_FALSE(mem.apply(3, Op::cas(v, 1, 2)).rmr);
}

TEST(Dsm, RemoteAccessesAlwaysRmr) {
    Memory mem(Protocol::Dsm);
    const VarId v = mem.allocate("v", 0, /*owner=*/3);
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);  // No caching: every time.
    EXPECT_TRUE(mem.apply(0, Op::write(v, 1)).rmr);
}

TEST(Dsm, UnownedVariablesAreRemoteToEveryone) {
    Memory mem(Protocol::Dsm);
    const VarId v = mem.allocate("v");
    EXPECT_TRUE(mem.apply(0, Op::read(v)).rmr);
    EXPECT_TRUE(mem.apply(7, Op::read(v)).rmr);
}

TEST(Dsm, RehomingChangesLocality) {
    Memory mem(Protocol::Dsm);
    const VarId v = mem.allocate("v", 0, 1);
    EXPECT_FALSE(mem.apply(1, Op::read(v)).rmr);
    mem.set_owner(v, 2);
    EXPECT_TRUE(mem.apply(1, Op::read(v)).rmr);
    EXPECT_FALSE(mem.apply(2, Op::read(v)).rmr);
}

// --- Fetch-and-add (baseline primitive) -------------------------------------

TEST(FetchAdd, AddsAndReturnsPrior) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 5);
    auto r = mem.apply(0, Op::fetch_add(v, 3));
    EXPECT_EQ(r.value, 5u);
    EXPECT_EQ(mem.peek(v), 8u);
    EXPECT_TRUE(r.nontrivial);
    // Delta 0 is trivial.
    EXPECT_FALSE(mem.apply(0, Op::fetch_add(v, 0)).nontrivial);
}

TEST(FetchAdd, NegativeDeltaViaTwosComplement) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v", 5);
    mem.apply(0, Op::fetch_add(v, static_cast<Word>(-2)));
    EXPECT_EQ(mem.peek(v), 3u);
}

// --- Accounting --------------------------------------------------------------

TEST(Accounting, TotalsAccumulate) {
    Memory mem(Protocol::WriteThrough);
    const VarId v = mem.allocate("v");
    mem.apply(0, Op::read(v));   // RMR
    mem.apply(0, Op::read(v));   // hit
    mem.apply(1, Op::write(v, 1));  // RMR
    EXPECT_EQ(mem.total_steps(), 3u);
    EXPECT_EQ(mem.total_rmrs(), 2u);
}

}  // namespace
}  // namespace rwr
