// ParkingSpot / wait_until unit tests (native/park.hpp): wake-before-wait
// races cannot lose wakeups, timed parks return at (not past) the absolute
// deadline, spurious wakes are absorbed, and the runtime kill switch works.
//
// The same source builds twice: test_park (platform default -- futex on
// Linux) and test_park_portable (-DRWR_FORCE_PORTABLE_PARK=1, the
// std::atomic wait/notify path), so both implementations face identical
// assertions. Both run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "native/park.hpp"
#include "native/spin.hpp"
#include "native/telemetry.hpp"

namespace {

using namespace rwr::native;
using namespace std::chrono_literals;

#if defined(RWR_FORCE_PORTABLE_PARK)
static_assert(RWR_HAS_FUTEX == 0,
              "forced-portable build must not select the futex path");
#elif defined(__linux__)
static_assert(RWR_HAS_FUTEX == 1,
              "default Linux build must select the futex path");
#endif

/// A Backoff already escalated past spin/yield, so wait_until goes straight
/// to parking (its terminal stage) on the first unsatisfied check.
Backoff slept_backoff() {
    Backoff b;
    for (int i = 0; i < Backoff::spin_limit() + Backoff::yield_limit(); ++i) {
        b.pause();
    }
    EXPECT_EQ(b.stage(), Backoff::Stage::Sleep);
    return b;
}

TEST(ParkTest, SatisfiedPredicateNeverReachesTheKernel) {
    LockTelemetry telemetry;
    ParkingSpot spot;
    Deadline never = Deadline::infinite();
    EXPECT_EQ(spot.park(never, &telemetry, [] { return true; }),
              ParkResult::kSatisfied);
    const auto snap = telemetry.aggregate();
    EXPECT_EQ(snap.count(TelemetryCounter::kFutexWait), 0u);
    EXPECT_EQ(snap.count(TelemetryCounter::kParkAbort), 0u);
    EXPECT_EQ(spot.waiters(), 0u);
}

TEST(ParkTest, WakeAllWithoutWaitersIsANoOp) {
    LockTelemetry telemetry;
    ParkingSpot spot;
    spot.wake_all(&telemetry);
    spot.wake_all(&telemetry);
    EXPECT_EQ(telemetry.aggregate().count(TelemetryCounter::kFutexWake), 0u);
}

TEST(ParkTest, TimedParkTimesOutAtTheAbsoluteDeadline) {
    ParkingSpot spot;
    const auto start = std::chrono::steady_clock::now();
    Deadline deadline = Deadline::after(30ms);
    ParkResult r;
    do {
        r = spot.park(deadline, nullptr, [] { return false; });
    } while (r == ParkResult::kUnparked);  // Absorb EINTR-style wakes.
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_EQ(r, ParkResult::kTimedOut);
    // Lower bound is the contract under test (the deadline is absolute, so
    // the kernel cannot return "timed out" early); the upper bound is
    // generous scheduling slack for loaded TSan CI runners.
    EXPECT_GE(elapsed, 30ms);
    EXPECT_LT(elapsed, 30ms + 2s);
    EXPECT_EQ(spot.waiters(), 0u);
}

TEST(ParkTest, WaitUntilHonorsTheDeadlineWhileParked) {
    ParkingSpot spot;
    Backoff backoff = slept_backoff();
    const auto start = std::chrono::steady_clock::now();
    Deadline deadline = Deadline::after(50ms);
    const bool ok =
        wait_until(spot, deadline, nullptr, backoff, [] { return false; });
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_FALSE(ok);
    EXPECT_GE(elapsed, 50ms);
    // The pre-parking sleep stage could overshoot by a full backoff slice
    // per loop; the parked wait must come back promptly. Bound kept loose
    // for slow runners -- the real regression (unbounded repark drift)
    // would blow far past it.
    EXPECT_LT(elapsed, 50ms + 2s);
}

TEST(ParkTest, WaitUntilReturnsImmediatelyWhenSatisfied) {
    ParkingSpot spot;
    Backoff backoff;  // Fresh: stage Spin, would not park anyway.
    Deadline deadline = Deadline::immediate();
    EXPECT_TRUE(
        wait_until(spot, deadline, nullptr, backoff, [] { return true; }));
    // Immediate deadline + unsatisfied predicate: failure, no waiting.
    Deadline deadline2 = Deadline::immediate();
    EXPECT_FALSE(
        wait_until(spot, deadline2, nullptr, backoff, [] { return false; }));
}

// The core lost-wakeup test: two threads ping-pong through two spots for
// thousands of rounds, parking directly (no spin prelude) so the
// wake-before-wait window is hit as often as possible. A lost wakeup hangs
// the test; the CTest TIMEOUT turns that into a loud failure.
TEST(ParkTest, HandoffPingPongLosesNoWakeups) {
    constexpr int kRounds = 3000;
    ParkingSpot ping, pong;
    std::atomic<int> a{0}, b{0};
    std::thread peer([&] {
        Deadline never = Deadline::infinite();
        for (int i = 1; i <= kRounds; ++i) {
            while (a.load() < i) {
                ping.park(never, nullptr, [&] { return a.load() >= i; });
            }
            b.store(i);
            pong.wake_all(nullptr);
        }
    });
    Deadline never = Deadline::infinite();
    for (int i = 1; i <= kRounds; ++i) {
        a.store(i);
        ping.wake_all(nullptr);
        while (b.load() < i) {
            pong.park(never, nullptr, [&] { return b.load() >= i; });
        }
    }
    peer.join();
    EXPECT_EQ(a.load(), kRounds);
    EXPECT_EQ(b.load(), kRounds);
}

// Same property through the full wait_until stack (spin -> yield -> park),
// with concurrent unrelated wake_all calls as spurious-wake noise.
TEST(ParkTest, SpuriousWakesAreAbsorbed) {
    ParkingSpot spot;
    std::atomic<bool> flag{false};
    std::atomic<bool> stop_noise{false};
    std::thread waiter([&] {
        Backoff backoff = slept_backoff();
        Deadline never = Deadline::infinite();
        EXPECT_TRUE(wait_until(spot, never, nullptr, backoff,
                               [&] { return flag.load(); }));
    });
    std::thread noise([&] {
        while (!stop_noise.load()) {
            spot.wake_all(nullptr);  // Epoch bumps with no state change.
            std::this_thread::yield();
        }
    });
    std::this_thread::sleep_for(20ms);
    flag.store(true);
    spot.wake_all(nullptr);
    waiter.join();
    stop_noise.store(true);
    noise.join();
}

TEST(ParkTest, KillSwitchKeepsWaitsOutOfTheKernel) {
    setenv("RWR_PARK", "0", 1);
    if (parking_enabled()) {
        GTEST_SKIP() << "parking_enabled() already latched in this process";
    }
    LockTelemetry telemetry;
    ParkingSpot spot;
    Backoff backoff = slept_backoff();
    Deadline deadline = Deadline::after(10ms);
    EXPECT_FALSE(wait_until(spot, deadline, &telemetry, backoff,
                            [] { return false; }));
    // Disabled parking falls back to Backoff sleeps: no kernel waits.
    EXPECT_EQ(telemetry.aggregate().count(TelemetryCounter::kFutexWait), 0u);
}

}  // namespace
