// Tests for the Theorem 5 lower-bound adversary: the construction must run
// to completion against every Concurrent-Entering lock, its soundness
// checks (Lemma 1, Lemma 2's 3x growth, Lemma 4) must hold for
// read/write/CAS algorithms, and the quantitative tradeoff
//   reader-exit RMRs >= log3(n / writer-entry RMRs)
// must emerge from the measurements.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "adversary/adversary.hpp"

namespace rwr::adversary {
namespace {

using harness::LockKind;

AdversaryResult run(LockKind lock, std::uint32_t n, std::uint32_t f,
                    Protocol proto = Protocol::WriteBack) {
    AdversaryConfig cfg;
    cfg.lock = lock;
    cfg.protocol = proto;
    cfg.n = n;
    cfg.f = f;
    return run_adversary(cfg);
}

// --- A_f under the adversary ---------------------------------------------------

class AfAdversary
    : public ::testing::TestWithParam<
          std::tuple<Protocol, std::uint32_t /*n*/, std::uint32_t /*f*/>> {};

TEST_P(AfAdversary, ConstructionSoundAndTight) {
    const auto [proto, n, f] = GetParam();
    if (f > n) {
        GTEST_SKIP();
    }
    const auto res = run(LockKind::Af, n, f, proto);
    ASSERT_TRUE(res.completed) << res.note;
    ASSERT_TRUE(res.e1_feasible);

    // Soundness of the proof machinery.
    EXPECT_EQ(res.lemma1_violations, 0u);
    EXPECT_TRUE(res.lemma4_holds)
        << "writer aware of only " << res.writer_awareness << " processes";
    EXPECT_LE(res.max_growth_factor, 3.0 + 1e-9)
        << "Lemma 2's bound must hold for a read/write/CAS algorithm";

    // Theorem 5 lower bound: r >= log3(n/f) (exact, not asymptotic, since
    // each batch is one expanding step per remaining reader).
    EXPECT_GE(static_cast<double>(res.r) + 1e-9, std::floor(res.log3_bound));

    // Lemma 1 consequence: the survivor's expanding steps all cost RMRs.
    EXPECT_LE(res.survivor_expanding_steps, res.max_reader_exit_rmrs + 1);

    // Tightness (Theorem 18): A_f's reader exit stays O(log(n/f)) even
    // under the adversary. Constant: C.add is <= 2 + 8*levels steps, plus
    // RSIG read and helper; every step is at most one RMR.
    const std::uint32_t K = (n + f - 1) / f;
    const auto levels =
        static_cast<std::uint64_t>(std::bit_width(std::bit_ceil(K)) - 1);
    EXPECT_LE(res.max_reader_exit_rmrs, 8 * levels + 8)
        << "n=" << n << " f=" << f << " K=" << K;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AfAdversary,
    ::testing::Combine(::testing::Values(Protocol::WriteThrough,
                                         Protocol::WriteBack),
                       ::testing::Values(4u, 16u, 64u, 256u),
                       ::testing::Values(1u, 2u, 8u, 64u)));

TEST(AfAdversary, IterationCountGrowsWithN) {
    // f = 1: r must grow as n grows (Θ(log n)).
    const auto r16 = run(LockKind::Af, 16, 1);
    const auto r1024 = run(LockKind::Af, 1024, 1);
    ASSERT_TRUE(r16.completed && r1024.completed);
    EXPECT_GT(r1024.r, r16.r);
    EXPECT_GE(r1024.r, static_cast<std::uint64_t>(r1024.log3_bound));
}

TEST(AfAdversary, IterationCountShrinksWithF) {
    // n fixed: raising f (more groups, smaller K) must shrink r.
    const auto rf1 = run(LockKind::Af, 256, 1);
    const auto rf64 = run(LockKind::Af, 256, 64);
    ASSERT_TRUE(rf1.completed && rf64.completed);
    EXPECT_GT(rf1.r, rf64.r);
}

TEST(AfAdversary, WriterEntryCostGrowsWithF) {
    const auto rf1 = run(LockKind::Af, 256, 1);
    const auto rf64 = run(LockKind::Af, 256, 64);
    ASSERT_TRUE(rf1.completed && rf64.completed);
    EXPECT_GT(rf64.writer_entry_rmrs, 4 * rf1.writer_entry_rmrs);
}

// --- Baselines under the adversary ----------------------------------------------

TEST(CentralizedAdversary, ReaderExitForcedToLinearRmrs) {
    // The CAS-retry exit lets the adversary stall all but ~one reader per
    // batch: r = Θ(n) and some reader pays Θ(n) RMRs in its exit alone.
    const auto res = run(LockKind::Centralized, 128, 1);
    ASSERT_TRUE(res.completed) << res.note;
    EXPECT_EQ(res.lemma1_violations, 0u);
    EXPECT_TRUE(res.lemma4_holds);
    EXPECT_LE(res.max_growth_factor, 3.0 + 1e-9);
    EXPECT_GE(res.r, 128u / 4);
    EXPECT_GE(res.max_reader_exit_rmrs, 128u / 4);
    // And its writer entry is cheap -- the tradeoff is honored from the
    // expensive-reader end.
    EXPECT_LE(res.writer_entry_rmrs, 8u);
}

TEST(ReaderPrefAdversary, LogarithmicReaderExit) {
    const auto res = run(LockKind::ReaderPref, 64, 1);
    ASSERT_TRUE(res.completed) << res.note;
    EXPECT_EQ(res.lemma1_violations, 0u);
    EXPECT_TRUE(res.lemma4_holds);
    EXPECT_LE(res.max_growth_factor, 3.0 + 1e-9);
    // Writer entry independent of n (one mutex of m+1 = 2 slots).
    EXPECT_LE(res.writer_entry_rmrs, 10u);
    // So reader exit must be >= log3(n / O(1)) -- and it is (rmutex tree).
    EXPECT_GE(static_cast<double>(res.max_reader_exit_rmrs),
              res.log3_bound - 1.0);
}

TEST(FaaAdversary, EscapesTheTradeoff) {
    // Fetch-and-add is outside the {read, write, CAS} set: both the writer
    // entry AND the reader exit stay O(1) as n grows -- impossible under
    // Theorem 5 -- and the mechanism is visible: knowledge grows by more
    // than 3x per batch (Lemma 2's CAS-triviality argument fails for FAA).
    const auto small = run(LockKind::Faa, 16, 1);
    const auto big = run(LockKind::Faa, 512, 1);
    ASSERT_TRUE(small.completed && big.completed) << big.note;
    EXPECT_LE(big.max_reader_exit_rmrs, 3u);
    EXPECT_LE(big.writer_entry_rmrs, 12u);
    EXPECT_EQ(big.max_reader_exit_rmrs, small.max_reader_exit_rmrs);
    EXPECT_GT(big.max_growth_factor, 3.0);
    // Lemma 4 still holds -- the writer IS aware of all readers; FAA just
    // lets one variable carry all that knowledge at unit cost.
    EXPECT_TRUE(big.lemma4_holds);
}

TEST(BigMutexAdversary, E1Infeasible) {
    // The construction requires Concurrent Entering; the big-mutex
    // baseline cannot put two readers in the CS, so E1 must fail cleanly.
    const auto res = run(LockKind::BigMutex, 4, 1);
    EXPECT_FALSE(res.e1_feasible);
    EXPECT_FALSE(res.completed);
    EXPECT_NE(res.note.find("Concurrent Entering"), std::string::npos);
}

// --- Edge cases -----------------------------------------------------------------

TEST(AdversaryEdges, SingleReader) {
    const auto res = run(LockKind::Af, 1, 1);
    ASSERT_TRUE(res.completed) << res.note;
    EXPECT_EQ(res.log3_bound, 0.0);
    EXPECT_TRUE(res.lemma4_holds);
    EXPECT_EQ(res.lemma1_violations, 0u);
}

TEST(AdversaryEdges, FEqualsNMeansNoIterations) {
    // K = 1: each reader owns its counters; exits touch nothing another
    // reader wrote, so no exit step is ever expanding.
    const auto res = run(LockKind::Af, 32, 32);
    ASSERT_TRUE(res.completed) << res.note;
    EXPECT_EQ(res.r, 0u);
    EXPECT_EQ(res.survivor_expanding_steps, 0u);
    // The writer still pays Θ(n) -- and still learns about every reader
    // (through the f counter roots it reads).
    EXPECT_GE(res.writer_entry_rmrs, 32u);
    EXPECT_TRUE(res.lemma4_holds);
}

TEST(AdversaryEdges, IterationCapReportsCleanly) {
    AdversaryConfig cfg;
    cfg.lock = LockKind::Centralized;  // Needs ~n iterations...
    cfg.n = 64;
    cfg.f = 1;
    cfg.iteration_cap = 5;  // ...but we only allow 5.
    const auto res = run_adversary(cfg);
    EXPECT_FALSE(res.completed);
    EXPECT_NE(res.note.find("cap"), std::string::npos);
    EXPECT_EQ(res.r, 5u);
}

TEST(AdversaryEdges, WriteThroughAndWriteBackAgreeOnR) {
    // r counts expanding steps, which are knowledge-level events: the
    // protocol choice must not change the iteration structure.
    const auto wt = run(LockKind::Af, 128, 4, Protocol::WriteThrough);
    const auto wb = run(LockKind::Af, 128, 4, Protocol::WriteBack);
    ASSERT_TRUE(wt.completed && wb.completed);
    EXPECT_EQ(wt.r, wb.r);
    EXPECT_EQ(wt.survivor_expanding_steps, wb.survivor_expanding_steps);
}

// --- The quantitative tradeoff across all subject locks -------------------------

TEST(Tradeoff, ExitRmrsDominateLog3OfNOverWriterCost) {
    // Theorem 5, measured form: for every read/write/CAS lock,
    //   max reader-exit RMRs >= log3(n / max(1, writer-entry RMRs)) - 1.
    for (const LockKind kind :
         {LockKind::Af, LockKind::Centralized, LockKind::ReaderPref}) {
        for (const std::uint32_t n : {16u, 64u, 256u}) {
            const auto res = run(kind, n, /*f=*/1);
            ASSERT_TRUE(res.completed)
                << harness::to_string(kind) << ": " << res.note;
            const double bound =
                std::log(static_cast<double>(n) /
                         static_cast<double>(
                             std::max<std::uint64_t>(1, res.writer_entry_rmrs))) /
                std::log(3.0);
            EXPECT_GE(static_cast<double>(res.max_reader_exit_rmrs),
                      bound - 1.0)
                << harness::to_string(kind) << " n=" << n;
        }
    }
}

}  // namespace
}  // namespace rwr::adversary
