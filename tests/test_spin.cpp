// Regression tests for the spin-wait helpers (native/spin.hpp): the
// Deadline expiry latch, stride-unaligned polling, and the Backoff
// escalation lifecycle (sleep-slice cap, stage transitions, reset()).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "native/spin.hpp"

namespace {

using rwr::native::Backoff;
using rwr::native::Deadline;
using namespace std::chrono_literals;

// --- Deadline ---------------------------------------------------------

TEST(DeadlineTest, InfiniteNeverExpires) {
    auto d = Deadline::infinite();
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(d.poll());
    }
}

TEST(DeadlineTest, ImmediateAlwaysExpired) {
    auto d = Deadline::immediate();
    for (int i = 0; i < 1000; ++i) {
        EXPECT_TRUE(d.poll());
    }
}

TEST(DeadlineTest, NonPositiveDurationIsImmediate) {
    EXPECT_TRUE(Deadline::after(0ms).is_immediate());
    EXPECT_TRUE(Deadline::after(-5ms).is_immediate());
    EXPECT_FALSE(Deadline::after(1h).is_immediate());
}

// The latch regression: poll() amortizes clock reads with a call-count
// stride, and the buggy version returned *false* on the stride's off
// cycles even after a clock read had already observed expiry. A caller
// that polls once per spin iteration then saw an expired deadline flicker
// back to "not expired" for up to kStride-1 iterations.
TEST(DeadlineTest, ExpiryLatchesAcrossStride) {
    auto d = Deadline::after(1ms);
    std::this_thread::sleep_for(5ms);
    // Drive until the first clock read notices expiry (first call reads).
    int polls = 0;
    while (!d.poll()) {
        ++polls;
        ASSERT_LT(polls, 64) << "expired deadline never reported";
    }
    // Latched: every subsequent call must say expired, with no
    // stride-sized false windows.
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(d.poll()) << "expiry un-latched at call " << i;
    }
}

// Stride-unaligned detection: misalign the internal call counter with
// polls *before* expiry, then check an expired deadline is still reported
// within one full stride of calls.
TEST(DeadlineTest, DetectsExpiryFromAnyStrideAlignment) {
    for (int misalign = 0; misalign < 12; ++misalign) {
        auto d = Deadline::after(20ms);
        for (int i = 0; i < misalign; ++i) {
            EXPECT_FALSE(d.poll());
        }
        std::this_thread::sleep_for(25ms);
        int calls = 0;
        bool seen = false;
        for (; calls < 16; ++calls) {  // 2x kStride gives slack.
            if (d.poll()) {
                seen = true;
                break;
            }
        }
        EXPECT_TRUE(seen) << "misalign=" << misalign
                          << ": expiry not observed within " << calls
                          << " calls";
    }
}

// --- Backoff ----------------------------------------------------------

// The cap regression: escalation doubled the sleep slice *after* checking
// it against the cap, so the slice sequence was 50,100,...,800,1600 --
// overshooting the documented 1000us bound by 60%.
TEST(BackoffTest, SleepSliceNeverExceedsCap) {
    Backoff b;
    // Burn through the spin and yield stages (cheap, no sleeping).
    for (int i = 0; i < Backoff::spin_limit() + Backoff::yield_limit();
         ++i) {
        b.pause();
    }
    ASSERT_EQ(b.stage(), Backoff::Stage::Sleep);
    // Each sleep-stage pause escalates; the slice must stay bounded.
    for (int i = 0; i < 8; ++i) {
        EXPECT_LE(b.sleep_slice(), Backoff::sleep_cap())
            << "slice overshot the cap after " << i << " sleep pauses";
        b.pause();
    }
    EXPECT_EQ(b.sleep_slice(), Backoff::sleep_cap());
}

TEST(BackoffTest, StagesEscalateInOrder) {
    Backoff b;
    EXPECT_EQ(b.stage(), Backoff::Stage::Spin);
    for (int i = 0; i < Backoff::spin_limit(); ++i) {
        b.pause();
    }
    EXPECT_EQ(b.stage(), Backoff::Stage::Yield);
    for (int i = 0; i < Backoff::yield_limit(); ++i) {
        b.pause();
    }
    EXPECT_EQ(b.stage(), Backoff::Stage::Sleep);
}

// The lifecycle contract: reset() must return a slept-out instance to the
// spin stage with the starting slice, so a loop that reuses one instance
// across hand-offs (after calling reset()) does not nap kSleepCap at a
// time on a fresh race.
TEST(BackoffTest, ResetRestartsEscalation) {
    Backoff b;
    for (int i = 0; i < Backoff::spin_limit() + Backoff::yield_limit() + 3;
         ++i) {
        b.pause();
    }
    ASSERT_EQ(b.stage(), Backoff::Stage::Sleep);
    const auto escalated = b.sleep_slice();
    b.reset();
    EXPECT_EQ(b.stage(), Backoff::Stage::Spin);
    EXPECT_LT(b.sleep_slice(), escalated);
}

}  // namespace
