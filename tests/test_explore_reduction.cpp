// Differential validation of the partial-order-reduced explorer.
//
// For every small configuration the exhaustive suites rely on
// (test_af_lock, test_mutex, test_dsm_locks, test_recover_explore) plus the
// deliberately broken locks of test_checker_teeth, the reduced DFS must
// reach the same verdict as the full enumeration -- violations found iff
// the full tree finds them, zero truncation -- while exploring at most as
// many schedules. The parallel frontier must be bit-identical for any job
// count. Also covers the explorer satellites: strict in-range replay
// choices and the SplitMix64 decorrelation of explore_random seed streams.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "mutex/explore_scenario.hpp"
#include "mutex/sim_mutex.hpp"
#include "recover/recover_experiment.hpp"
#include "sim/broken_locks.hpp"
#include "sim/explorer.hpp"
#include "sim/por.hpp"
#include "sim/rwlock.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace rwr::sim {
namespace {

// ---- Differential harness --------------------------------------------------

struct DiffOutcome {
    ExploreResult full;
    ExploreResult reduced;
};

DiffOutcome diff_explore(const ScenarioFactory& factory, int depth,
                         std::uint64_t budget, const std::string& label) {
    ExploreOptions full_opt;
    full_opt.branch_depth = depth;
    full_opt.finish_budget = budget;
    full_opt.reduce = false;
    ExploreOptions red_opt = full_opt;
    red_opt.reduce = true;

    DiffOutcome out;
    out.full = explore(factory, full_opt);
    out.reduced = explore(factory, red_opt);

    // Verdict must be identical: the reduction may drop redundant
    // interleavings, never evidence.
    EXPECT_EQ(out.full.violations > 0, out.reduced.violations > 0)
        << label << ": full=" << out.full.violations
        << " (first: " << out.full.first_violation << ")"
        << " reduced=" << out.reduced.violations
        << " (first: " << out.reduced.first_violation << ")";
    EXPECT_LE(out.reduced.schedules_explored, out.full.schedules_explored)
        << label;
    EXPECT_EQ(out.full.truncated_runs, 0u) << label;
    EXPECT_EQ(out.reduced.truncated_runs, 0u) << label;

    // The parallel frontier must not change a single bit of the result,
    // for either engine mode.
    red_opt.jobs = 8;
    const ExploreResult red8 = explore(factory, red_opt);
    EXPECT_EQ(out.reduced, red8) << label << ": reduced jobs=1 vs jobs=8";
    full_opt.jobs = 8;
    const ExploreResult full8 = explore(factory, full_opt);
    EXPECT_EQ(out.full, full8) << label << ": full jobs=1 vs jobs=8";
    return out;
}

harness::ExperimentConfig af_cfg(Protocol proto, std::uint32_t n,
                                 std::uint32_t m, std::uint32_t f,
                                 harness::LockKind kind = harness::LockKind::Af) {
    harness::ExperimentConfig cfg;
    cfg.lock = kind;
    cfg.protocol = proto;
    cfg.n = n;
    cfg.m = m;
    cfg.f = f;
    cfg.passages = 1;
    return cfg;
}

// ---- Correct locks: verdicts identical, nothing truncated ------------------

TEST(ExploreReduction, AfConfigsMatchFullEnumeration) {
    const auto a = diff_explore(
        harness::scenario_factory(af_cfg(Protocol::WriteThrough, 2, 1, 1)),
        10, 100'000, "af-n2m1f1");
    EXPECT_EQ(a.full.violations, 0u);
    EXPECT_EQ(a.full.incomplete_runs, 0u);
    EXPECT_EQ(a.reduced.incomplete_runs, 0u);

    const auto b = diff_explore(
        harness::scenario_factory(af_cfg(Protocol::WriteBack, 2, 1, 2)), 10,
        100'000, "af-n2m1f2");
    EXPECT_EQ(b.full.violations, 0u);

    const auto c = diff_explore(
        harness::scenario_factory(af_cfg(Protocol::WriteThrough, 1, 2, 1)),
        10, 100'000, "af-n1m2");
    EXPECT_EQ(c.full.violations, 0u);
}

TEST(ExploreReduction, AfDsmConfigMatchesFullEnumeration) {
    // The DSM tier goes through the same explorer (test_dsm_locks); homed
    // spin variables change the RMR accounting, not the step semantics.
    const auto r = diff_explore(
        harness::scenario_factory(
            af_cfg(Protocol::Dsm, 2, 1, 1, harness::LockKind::AfDsm)),
        8, 100'000, "afdsm-n2m1");
    EXPECT_EQ(r.full.violations, 0u);
}

TEST(ExploreReduction, TournamentAndMcsMutexMatchFullEnumeration) {
    const auto t = diff_explore(
        mutex::mutex_scenario_factory(
            [](Memory& mem, std::uint32_t m) {
                return std::make_unique<mutex::TournamentSimMutex>(mem, "mx",
                                                                   m);
            },
            2, /*passages=*/2, /*cs_steps=*/1),
        12, 100'000, "tournament-m2");
    EXPECT_EQ(t.full.violations, 0u);

    const auto mc = diff_explore(
        mutex::mutex_scenario_factory(
            [](Memory& mem, std::uint32_t m) {
                return std::make_unique<mutex::McsSimMutex>(mem, "mx", m);
            },
            2, /*passages=*/1, /*cs_steps=*/1),
        12, 100'000, "mcs-m2");
    EXPECT_EQ(mc.full.violations, 0u);
}

TEST(ExploreReduction, RecoverableConfigsMatchFullEnumeration) {
    using recover::RecoverExperimentConfig;
    using recover::RecoverLockKind;
    const auto tiny = [](RecoverLockKind kind) {
        RecoverExperimentConfig cfg;
        cfg.lock = kind;
        const bool mx = kind == RecoverLockKind::Mutex ||
                        kind == RecoverLockKind::JJJMutex;
        cfg.n = mx ? 0 : 2;
        cfg.m = mx ? 2 : 1;
        cfg.f = 1;
        cfg.passages = 1;
        cfg.cs_steps = 1;
        cfg.max_steps = 100000;
        return cfg;
    };

    // Crash-free walks for each recoverable kind the explore suite covers.
    for (const RecoverLockKind kind :
         {RecoverLockKind::Mutex, RecoverLockKind::JJJMutex,
          RecoverLockKind::RwLock}) {
        const auto r = diff_explore(
            recover::recover_scenario_factory(tiny(kind)), 5, 20'000,
            std::string("recover-") + recover::to_string(kind));
        EXPECT_EQ(r.full.violations, 0u);
    }

    // Crash-restart placement: the injector fires on victim-local section
    // step counts, which commute with independent steps, so reduction
    // stays enabled and must agree.
    auto crash = tiny(RecoverLockKind::RwLock);
    crash.faults.crash_restart(/*victim=*/0, Section::Entry, 2);
    const auto r = diff_explore(recover::recover_scenario_factory(crash), 4,
                                20'000, "recover-rrw-crash");
    EXPECT_EQ(r.full.violations, 0u);
}

TEST(ExploreReduction, StallFaultsDisableReductionButKeepVerdicts) {
    using recover::RecoverExperimentConfig;
    using recover::RecoverLockKind;
    RecoverExperimentConfig cfg;
    cfg.lock = RecoverLockKind::Mutex;
    cfg.n = 0;
    cfg.m = 2;
    cfg.passages = 1;
    cfg.cs_steps = 1;
    cfg.max_steps = 100000;
    cfg.faults.stall(/*victim=*/0, Section::Entry, 1, /*steps=*/6);
    const ScenarioFactory factory = recover::recover_scenario_factory(cfg);

    // Stall resume deadlines are global-step based, so the scenario vetoes
    // reduction (Scenario::reduction_safe) and explore(reduce=true) must
    // fall back to the full enumeration bit for bit.
    EXPECT_FALSE(factory().reduction_safe);
    ExploreOptions full_opt;
    full_opt.branch_depth = 5;
    full_opt.finish_budget = 20'000;
    full_opt.reduce = false;
    ExploreOptions red_opt = full_opt;
    red_opt.reduce = true;
    const ExploreResult full = explore(factory, full_opt);
    const ExploreResult red = explore(factory, red_opt);
    EXPECT_EQ(full, red);
    EXPECT_EQ(full.violations, 0u) << full.first_violation;
}

// ---- Broken locks: the reduction must keep finding the bugs ----------------

TEST(ExploreReduction, BrokenLocksStillCaught) {
    const auto nw = diff_explore(broken_factory<NoReaderWaitLock>(1, 1), 10,
                                 10'000, "broken-nowait");
    EXPECT_GT(nw.full.violations, 0u);
    EXPECT_GT(nw.reduced.violations, 0u);

    const auto tt = diff_explore(broken_factory<TocTouLock>(2, 1), 12,
                                 10'000, "broken-toctou");
    EXPECT_GT(tt.full.violations, 0u);
    EXPECT_GT(tt.reduced.violations, 0u);
}

// ---- Legacy entry points keep their exact semantics ------------------------

TEST(ExploreReduction, ExploreDfsMatchesFullExplore) {
    const auto factory =
        harness::scenario_factory(af_cfg(Protocol::WriteThrough, 2, 1, 1));
    const ExploreResult dfs = explore_dfs(factory, 9, 100'000);
    ExploreOptions opt;
    opt.branch_depth = 9;
    opt.finish_budget = 100'000;
    opt.reduce = false;
    EXPECT_EQ(dfs, explore(factory, opt));
    // Historical floor from test_af_lock (depth 12 explores > 500): the
    // engine rework must not change full-tree counting semantics.
    EXPECT_GT(dfs.schedules_explored, 100u);
    EXPECT_EQ(dfs.truncated_runs, 0u);
}

// ---- Satellite: strict in-range replay choices -----------------------------

TEST(ExploreReduction, DfsReplayChoicesAreStrictlyValidated) {
    const auto factory =
        harness::scenario_factory(af_cfg(Protocol::WriteThrough, 1, 1, 1));
    Scenario sc = factory();
    sc.sys->start_all();
    const std::size_t width = sc.sys->runnable().size();
    ASSERT_GE(width, 2u);

    // In-range resolves identically in both modes.
    EXPECT_EQ(detail::resolve_choice(*sc.sys, 0, /*strict=*/true),
              detail::resolve_choice(*sc.sys, 0, /*strict=*/false));
    // Out-of-range: externally supplied prefixes wrap (documented
    // ReplayScheduler behaviour)...
    EXPECT_EQ(detail::resolve_choice(*sc.sys, width, /*strict=*/false),
              sc.sys->runnable()[0]);
    // ...but DFS-generated prefixes must never rely on the wraparound.
    EXPECT_THROW(
        static_cast<void>(
            detail::resolve_choice(*sc.sys, width, /*strict=*/true)),
        std::logic_error);
}

// ---- Satellite: explore_random seed decorrelation --------------------------

TEST(ExploreReduction, AdjacentBaseSeedsProduceDisjointScheduleTraces) {
    // Under the old `seed + i` derivation, base seeds 42 and 43 shared
    // 199 of 200 run seeds. The SplitMix64 double mix must make both the
    // derived seed streams and the resulting schedule traces disjoint.
    constexpr std::uint64_t kRuns = 64;
    std::set<std::uint64_t> seeds42;
    std::set<std::uint64_t> seeds43;
    for (std::uint64_t i = 0; i < kRuns; ++i) {
        seeds42.insert(explore_run_seed(42, i));
        seeds43.insert(explore_run_seed(43, i));
    }
    EXPECT_EQ(seeds42.size(), kRuns);
    for (const std::uint64_t s : seeds43) {
        EXPECT_EQ(seeds42.count(s), 0u);
    }

    // Trace-level check: record the actual schedules the derived seeds
    // drive on a small scenario; adjacent bases must not replay a single
    // identical schedule.
    const auto factory =
        harness::scenario_factory(af_cfg(Protocol::WriteThrough, 2, 2, 1));
    const auto trace = [&](std::uint64_t base, std::uint64_t i) {
        Scenario sc = factory();
        RandomScheduler rnd(explore_run_seed(base, i));
        RecordingScheduler rec(rnd);
        run(*sc.sys, rec, 2'000);
        return rec.choices();
    };
    std::set<std::vector<std::size_t>> traces42;
    for (std::uint64_t i = 0; i < 16; ++i) {
        traces42.insert(trace(42, i));
    }
    for (std::uint64_t i = 0; i < 16; ++i) {
        EXPECT_EQ(traces42.count(trace(43, i)), 0u) << "run " << i;
    }
}

}  // namespace
}  // namespace rwr::sim
