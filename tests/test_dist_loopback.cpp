// Native loopback backend: daemon lifecycle, control-channel round-trips,
// real cross-mapping shm visibility, and concurrent load on the native
// table (TSan-sized cells -- this suite runs in the TSan CI job, so the
// seq_cst atomics of NativeTable and the ParkingSpot handshakes get a race
// detector pass).
#include <gtest/gtest.h>

#include <memory>

#include "dist/load.hpp"
#include "dist/loopback.hpp"
#include "dist/native_table.hpp"

namespace rwr::dist {
namespace {

TableConfig tiny_cfg(bool homed) {
    TableConfig cfg;
    cfg.shards = 2;
    cfg.locks_per_shard = 2;
    cfg.sessions = 16;
    cfg.homed = homed;
    return cfg;
}

TEST(DistLoopback, HelloAdvertisesGeometryAndSegment) {
    LockServiceDaemon daemon(tiny_cfg(true));
    daemon.start();
    DistClient client;
    client.connect("127.0.0.1", daemon.port());
    EXPECT_EQ(client.config().shards, 2u);
    EXPECT_EQ(client.config().locks_per_shard, 2u);
    EXPECT_EQ(client.config().sessions, 16u);
    EXPECT_TRUE(client.config().homed);
    ASSERT_NE(client.words(), nullptr);
    client.close();
    daemon.stop();
}

TEST(DistLoopback, ClientAndDaemonShareTheWords) {
    // A store through the client's mapping must be visible through the
    // daemon's -- the property the smoke harness's STATS cross-check
    // relies on.
    LockServiceDaemon daemon(tiny_cfg(true));
    daemon.start();
    DistClient client;
    client.connect("127.0.0.1", daemon.port());
    const TableLayout& lay = daemon.layout();
    const auto idx = lay.flat_index(lay.lock_word(3, LockField::WTicket));
    client.words()[idx].store(77);
    EXPECT_EQ(daemon.words()[idx].load(), 77u);
    const CtrlReply st = client.stats();
    EXPECT_EQ(st.ok, 1u);
    EXPECT_EQ(st.tickets_issued, 77u);
    client.words()[idx].store(0);
    client.close();
    daemon.stop();
}

TEST(DistLoopback, ShutdownStopsTheDaemon) {
    LockServiceDaemon daemon(tiny_cfg(true));
    daemon.start();
    EXPECT_TRUE(daemon.running());
    DistClient client;
    client.connect("127.0.0.1", daemon.port());
    client.shutdown_server();
    client.close();
    daemon.stop();  // Joins; must not hang after remote shutdown.
    EXPECT_FALSE(daemon.running());
}

TEST(DistLoopback, SecondDaemonGetsItsOwnPortAndSegment) {
    LockServiceDaemon a(tiny_cfg(true));
    LockServiceDaemon b(tiny_cfg(true));
    a.start();
    b.start();
    EXPECT_NE(a.port(), b.port());
    EXPECT_NE(a.shm_name(), b.shm_name());
    b.stop();
    a.stop();
}

void run_concurrent_load(bool homed) {
    LockServiceDaemon daemon(tiny_cfg(homed));
    daemon.start();
    DistClient client;
    client.connect("127.0.0.1", daemon.port());
    auto spots = std::make_unique<native::ParkingSpot[]>(
        client.config().sessions);
    NativeTable table(client.words(), client.config(), spots.get());
    LoadConfig lc;
    lc.ops_per_session = 64;
    lc.reader_pct = 60;
    lc.seed = 3;
    lc.jobs = 4;
    const LoadResult res = run_load(table, lc);
    EXPECT_EQ(res.witness_violations, 0u);
    EXPECT_EQ(res.merged.total_ops(), 16u * 64u);
    // Quiesced: no held writers, no active readers, and the daemon's
    // ticket odometer agrees with the client's writer-op count.
    const CtrlReply st = client.stats();
    EXPECT_EQ(st.tickets_issued, res.merged.write_ops);
    EXPECT_EQ(st.witness_nonzero, 0u);
    EXPECT_EQ(st.readers_active, 0u);
    // Only homed sessions get free local gate spins; either way every
    // shard verb was counted.
    EXPECT_GT(res.merged.network_rmrs, 0u);
    client.close();
    daemon.stop();
}

TEST(DistLoopback, ConcurrentLoadHomed) { run_concurrent_load(true); }
TEST(DistLoopback, ConcurrentLoadUnhomed) { run_concurrent_load(false); }

TEST(DistLoopback, LatencyHistogramQuantilesAreOrdered) {
    SessionStats st;
    st.record_acquire_ns(100);
    st.record_acquire_ns(1000);
    st.record_acquire_ns(100000);
    const double p50 = st.percentile_us(0.50);
    const double p99 = st.percentile_us(0.99);
    EXPECT_GT(p50, 0.0);
    EXPECT_GE(p99, p50);
}

}  // namespace
}  // namespace rwr::dist
