// rwlock lab: run any experiment from the command line.
//
//   lab tradeoff  --lock af --n 256 --m 2 --f 16 --protocol wb --passages 3
//   lab adversary --lock centralized --n 128
//   lab explore   --lock af --n 2 --m 1 --f 2 --depth 12
//   lab list
//
// A thin front-end over the same harness the benches and tests use;
// intended for poking at parameter combinations the canned benches don't
// sweep.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "adversary/adversary.hpp"
#include "harness/bench_json.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "native/perf.hpp"
#include "sim/explorer.hpp"

namespace {

using namespace rwr;
using namespace rwr::harness;

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
    std::map<std::string, std::string> flags;
    for (int i = first; i + 1 < argc; i += 2) {
        std::string key = argv[i];
        if (key.rfind("--", 0) == 0) {
            key = key.substr(2);
        }
        flags[key] = argv[i + 1];
    }
    return flags;
}

std::uint64_t flag_u64(const std::map<std::string, std::string>& f,
                       const std::string& k, std::uint64_t def) {
    auto it = f.find(k);
    return it == f.end() ? def : std::stoull(it->second);
}

LockKind flag_lock(const std::map<std::string, std::string>& f) {
    const auto it = f.find("lock");
    const std::string name = it == f.end() ? "af" : it->second;
    for (const auto kind : all_lock_kinds()) {
        std::string canon = to_string(kind);
        if (canon == name || (name == "af" && kind == LockKind::Af)) {
            return kind;
        }
    }
    std::cerr << "unknown lock '" << name << "'; try: ";
    for (const auto kind : all_lock_kinds()) {
        std::cerr << to_string(kind) << " ";
    }
    std::cerr << "\n";
    std::exit(2);
}

Protocol flag_protocol(const std::map<std::string, std::string>& f) {
    const auto it = f.find("protocol");
    const std::string p = it == f.end() ? "wb" : it->second;
    if (p == "wt" || p == "write-through") {
        return Protocol::WriteThrough;
    }
    if (p == "wb" || p == "write-back") {
        return Protocol::WriteBack;
    }
    if (p == "dsm") {
        return Protocol::Dsm;
    }
    std::cerr << "unknown protocol '" << p << "' (wt|wb|dsm)\n";
    std::exit(2);
}

int cmd_tradeoff(const std::map<std::string, std::string>& f) {
    ExperimentConfig cfg;
    cfg.lock = flag_lock(f);
    cfg.protocol = flag_protocol(f);
    cfg.n = static_cast<std::uint32_t>(flag_u64(f, "n", 16));
    cfg.m = static_cast<std::uint32_t>(flag_u64(f, "m", 1));
    cfg.f = static_cast<std::uint32_t>(flag_u64(f, "f", 1));
    cfg.passages = flag_u64(f, "passages", 3);
    cfg.cs_steps = flag_u64(f, "cs-steps", 1);
    cfg.seed = flag_u64(f, "seed", 1);
    cfg.sched = f.count("round-robin") ? SchedKind::RoundRobin
                                       : SchedKind::Random;
    const auto res = run_experiment(cfg);
    std::printf("lock=%s protocol=%s n=%u m=%u f=%u passages=%llu\n",
                to_string(cfg.lock).c_str(), to_string(cfg.protocol).c_str(),
                cfg.n, cfg.m, cfg.f,
                static_cast<unsigned long long>(cfg.passages));
    if (!res.finished) {
        std::printf("DID NOT FINISH within %llu steps\n",
                    static_cast<unsigned long long>(cfg.max_steps));
        return 1;
    }
    Table t({"role", "entry RMR mean/max", "exit RMR mean/max",
             "passage RMR mean/max", "steps mean"});
    auto row = [&](const char* role, const RoleStats& s) {
        t.row({role,
               fmt(s.mean_in(Section::Entry)) + "/" +
                   fmt(s.max_in(Section::Entry)),
               fmt(s.mean_in(Section::Exit)) + "/" +
                   fmt(s.max_in(Section::Exit)),
               fmt(s.mean_passage_rmrs) + "/" + fmt(s.max_passage_rmrs),
               fmt(s.mean_steps[1] + s.mean_steps[2] + s.mean_steps[3])});
    };
    row("reader", res.readers);
    row("writer", res.writers);
    t.print();
    std::printf("max concurrent readers: %u; ME violations: %llu\n",
                res.max_concurrent_readers,
                static_cast<unsigned long long>(res.me_violations));
    return res.me_violations == 0 ? 0 : 1;
}

Section flag_section(const std::map<std::string, std::string>& f) {
    const auto it = f.find("section");
    const std::string s = it == f.end() ? "entry" : it->second;
    if (s == "entry") {
        return Section::Entry;
    }
    if (s == "critical" || s == "cs") {
        return Section::Critical;
    }
    if (s == "exit") {
        return Section::Exit;
    }
    std::cerr << "unknown section '" << s << "' (entry|critical|exit)\n";
    std::exit(2);
}

int cmd_faults(const std::map<std::string, std::string>& f) {
    ExperimentConfig cfg;
    cfg.lock = flag_lock(f);
    cfg.protocol = flag_protocol(f);
    cfg.n = static_cast<std::uint32_t>(flag_u64(f, "n", 2));
    cfg.m = static_cast<std::uint32_t>(flag_u64(f, "m", 1));
    cfg.f = static_cast<std::uint32_t>(flag_u64(f, "f", 1));
    cfg.passages = flag_u64(f, "passages", 2);
    cfg.seed = flag_u64(f, "seed", 1);
    cfg.max_steps = flag_u64(f, "max-steps", 100'000);
    cfg.sched = f.count("round-robin") ? SchedKind::RoundRobin
                                       : SchedKind::Random;
    const auto victim =
        static_cast<rwr::ProcId>(flag_u64(f, "crash", cfg.n + cfg.m));
    if (victim < cfg.n + cfg.m) {
        const auto step = flag_u64(f, "step", 1);
        const auto stall = flag_u64(f, "stall-steps", 0);
        if (stall > 0) {
            cfg.faults.stall(victim, flag_section(f), step, stall);
        } else {
            cfg.faults.crash(victim, flag_section(f), step);
        }
    }
    cfg.progress_window = flag_u64(f, "window", 2000);
    cfg.wall_deadline_ms = flag_u64(f, "wall-ms", 0);
    cfg.record_schedule = true;

    const auto res = run_experiment(cfg);
    std::printf(
        "steps=%llu finished=%s surviving-finished=%s crashed=%u "
        "livelock=%s starvation=%s deadline-expired=%s\n",
        static_cast<unsigned long long>(res.steps),
        res.finished ? "yes" : "no",
        res.all_surviving_finished ? "yes" : "no", res.crashed,
        res.livelock ? "yes" : "no", res.starvation ? "yes" : "no",
        res.deadline_expired ? "yes" : "no");
    if (!res.progress_diagnosis.empty()) {
        std::printf("--- diagnosis ---\n%s", res.progress_diagnosis.c_str());
    }
    if (f.count("replay")) {
        // Re-run the recorded schedule on a fresh system and check that the
        // stuck execution reproduces step for step.
        ExperimentConfig rcfg = cfg;
        rcfg.replay = res.schedule;
        const auto second = run_experiment(rcfg);
        const bool same = second.steps == res.steps &&
                          second.schedule == res.schedule &&
                          second.crashed == res.crashed &&
                          second.livelock == res.livelock &&
                          second.starvation == res.starvation;
        std::printf("replay of %zu recorded choices: %s\n",
                    res.schedule.size(), same ? "identical" : "DIVERGED");
        if (!same) {
            return 1;
        }
    }
    return 0;
}

int cmd_adversary(const std::map<std::string, std::string>& f) {
    adversary::AdversaryConfig cfg;
    cfg.lock = flag_lock(f);
    cfg.protocol = flag_protocol(f);
    cfg.n = static_cast<std::uint32_t>(flag_u64(f, "n", 64));
    cfg.f = static_cast<std::uint32_t>(flag_u64(f, "f", 1));
    const auto res = adversary::run_adversary(cfg);
    if (!res.completed) {
        std::printf("construction incomplete: %s\n", res.note.c_str());
        return 1;
    }
    std::printf(
        "r=%llu (log3(n/f)=%.2f)  survivor-expanding=%llu  "
        "reader-exit-max=%llu  writer-entry=%llu  growth-max=%.2f  "
        "lemma1-violations=%llu  lemma4=%s\n",
        static_cast<unsigned long long>(res.r), res.log3_bound,
        static_cast<unsigned long long>(res.survivor_expanding_steps),
        static_cast<unsigned long long>(res.max_reader_exit_rmrs),
        static_cast<unsigned long long>(res.writer_entry_rmrs),
        res.max_growth_factor,
        static_cast<unsigned long long>(res.lemma1_violations),
        res.lemma4_holds ? "ok" : "VIOLATED");
    return 0;
}

int cmd_explore(const std::map<std::string, std::string>& f) {
    ExperimentConfig cfg;
    cfg.lock = flag_lock(f);
    cfg.protocol = flag_protocol(f);
    cfg.n = static_cast<std::uint32_t>(flag_u64(f, "n", 2));
    cfg.m = static_cast<std::uint32_t>(flag_u64(f, "m", 1));
    cfg.f = static_cast<std::uint32_t>(flag_u64(f, "f", 1));
    cfg.passages = flag_u64(f, "passages", 1);
    const int depth = static_cast<int>(flag_u64(f, "depth", 10));
    sim::ExploreOptions opt;
    opt.branch_depth = depth;
    opt.finish_budget = 100'000;
    // Default off: plain `lab explore` keeps the historical full-tree
    // schedule counts; --reduce 1 switches on partial-order reduction.
    opt.reduce = flag_u64(f, "reduce", 0) != 0;
    opt.jobs = static_cast<unsigned>(flag_u64(f, "jobs", 1));
    const auto res = sim::explore(scenario_factory(cfg), opt);
    std::printf("schedules=%llu violations=%llu incomplete=%llu "
                "truncated=%llu\n",
                static_cast<unsigned long long>(res.schedules_explored),
                static_cast<unsigned long long>(res.violations),
                static_cast<unsigned long long>(res.incomplete_runs),
                static_cast<unsigned long long>(res.truncated_runs));
    if (!res.first_violation.empty()) {
        std::printf("first violation: %s\n", res.first_violation.c_str());
    }
    return res.ok() ? 0 : 1;
}

int cmd_metrics(const std::map<std::string, std::string>& f) try {
    namespace perf = rwr::native::perf;
    namespace bench = rwr::harness::bench;
    namespace json = rwr::harness::json;

    perf::PerfConfig cfg;
    const auto lit = f.find("lock");
    cfg.lock = perf::perf_lock_from(lit == f.end() ? "af" : lit->second);
    cfg.readers = static_cast<std::uint32_t>(flag_u64(f, "n", 2));
    cfg.writers = static_cast<std::uint32_t>(flag_u64(f, "m", 1));
    cfg.f = static_cast<std::uint32_t>(flag_u64(f, "f", 0));
    cfg.duration_ms = static_cast<std::uint32_t>(flag_u64(f, "ms", 200));

    const auto res = perf::run_perf(cfg);
    std::printf(
        "lock=%s n=%u m=%u f=%u ms=%u  reader_ops=%llu writer_ops=%llu "
        "throughput=%.0f ops/s  telemetry=%s\n",
        perf::to_string(cfg.lock), cfg.readers, cfg.writers,
        cfg.resolved_f(), cfg.duration_ms,
        static_cast<unsigned long long>(res.reader_ops),
        static_cast<unsigned long long>(res.writer_ops),
        res.throughput_ops(),
        rwr::native::telemetry_enabled() ? "on" : "off (RWR_TELEMETRY=0)");

    Table c({"counter", "value"});
    for (std::uint32_t i = 0; i < rwr::native::kTelemetryCounters; ++i) {
        const auto ctr = static_cast<rwr::native::TelemetryCounter>(i);
        c.row({rwr::native::to_string(ctr),
               fmt(res.telemetry.counters[i])});
    }
    c.print();

    Table l({"latency (sampled)", "samples", "p50 ns", "p90 ns", "p99 ns",
             "max ns"});
    for (std::uint32_t i = 0; i < rwr::native::kTelemetryHistos; ++i) {
        const auto h = static_cast<rwr::native::TelemetryHisto>(i);
        if (res.telemetry.samples(h) == 0) {
            continue;
        }
        l.row({rwr::native::to_string(h), fmt(res.telemetry.samples(h)),
               fmt(res.telemetry.quantile_ns(h, 0.50)),
               fmt(res.telemetry.quantile_ns(h, 0.90)),
               fmt(res.telemetry.quantile_ns(h, 0.99)),
               fmt(res.telemetry.quantile_ns(h, 1.0))});
    }
    l.print();

    const auto jit = f.find("json");
    if (jit != f.end()) {
        auto doc = bench::make_doc("metrics");
        auto& results = doc.set("results", json::Value::array());
        auto row = json::Value::object();
        row.set("lock", perf::to_string(cfg.lock));
        row.set("n", cfg.readers);
        row.set("m", cfg.writers);
        row.set("f", cfg.resolved_f());
        row.set("threads", cfg.readers + cfg.writers);
        row.set("duration_ms", cfg.duration_ms);
        row.set("reader_ops", res.reader_ops);
        row.set("writer_ops", res.writer_ops);
        row.set("throughput_ops", res.throughput_ops());
        row.set("latency_ns", bench::latency_to_json(res.telemetry));
        row.set("telemetry", bench::telemetry_to_json(res.telemetry));
        results.push_back(std::move(row));
        bench::write_file(jit->second, doc);
        std::printf("wrote %s\n", jit->second.c_str());
    }
    return 0;
} catch (const std::exception& e) {
    std::cerr << "metrics: " << e.what() << "\n";
    return 2;
}

void usage() {
    std::puts(
        "usage: lab <command> [--flag value ...]\n"
        "  tradeoff   measure per-section RMRs  (--lock --protocol --n --m "
        "--f --passages --cs-steps --seed)\n"
        "  adversary  run the Theorem 5 construction (--lock --protocol "
        "--n --f)\n"
        "  explore    exhaustive schedule search (--reduce 1 for "
        "partial-order reduction, --jobs N) (--lock --n --m --f "
        "--depth)\n"
        "  faults     crash/stall injection + livelock watchdog (--crash PID "
        "--section entry|critical|exit --step K [--stall-steps S] "
        "[--window W] [--wall-ms MS] [--replay 1])\n"
        "  metrics    native throughput + live lock telemetry (--lock "
        "af|centralized|faa|phase-fair --n --m --f --ms [--json PATH])\n"
        "  list       list available locks");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const auto flags = parse_flags(argc, argv, 2);
    if (cmd == "tradeoff") {
        return cmd_tradeoff(flags);
    }
    if (cmd == "adversary") {
        return cmd_adversary(flags);
    }
    if (cmd == "explore") {
        return cmd_explore(flags);
    }
    if (cmd == "faults") {
        return cmd_faults(flags);
    }
    if (cmd == "metrics") {
        return cmd_metrics(flags);
    }
    if (cmd == "list") {
        for (const auto kind : rwr::harness::all_lock_kinds()) {
            std::puts(rwr::harness::to_string(kind).c_str());
        }
        return 0;
    }
    usage();
    return 2;
}
