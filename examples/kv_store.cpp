// Example: a read-mostly in-memory key-value store -- the workload that
// motivates reader-writer locks (paper Section 1) -- protected by
// different locks, with end-to-end operation counts per lock.
//
//   $ ./examples/kv_store [seconds-per-lock]
//
// Demonstrates the practical API differences: the A_f lock is id-based
// (threads own reader/writer slots), the facade hides that, and the
// centralized/FAA baselines are id-less. On a machine with few cores the
// absolute numbers mean little (see EXPERIMENTS.md E9); the example is
// about the integration pattern.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "native/af_lock.hpp"
#include "native/baselines.hpp"
#include "native/shared_mutex.hpp"

namespace {

constexpr int kReaders = 3;
constexpr int kWriters = 1;

class KvStore {
   public:
    void put(std::uint64_t key, std::uint64_t value) { map_[key] = value; }
    [[nodiscard]] std::uint64_t get(std::uint64_t key) const {
        auto it = map_.find(key);
        return it == map_.end() ? 0 : it->second;
    }
    [[nodiscard]] std::size_t size() const { return map_.size(); }

   private:
    std::unordered_map<std::uint64_t, std::uint64_t> map_;
};

struct Counters {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
};

/// LockApi adapts each lock to (reader_id|writer_id)-taking calls.
template <typename LockApi>
void drive(const char* name, LockApi api, double seconds) {
    KvStore store;
    Counters counters;
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;

    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&, r] {
            std::uint64_t key = r;
            std::uint64_t local = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                api.lock_shared(r);
                local += store.get(key % 997);
                api.unlock_shared(r);
                ++key;
                counters.reads.fetch_add(1, std::memory_order_relaxed);
            }
            (void)local;
        });
    }
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&, w] {
            std::uint64_t key = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                api.lock(w);
                store.put(key % 997, key);
                api.unlock(w);
                ++key;
                counters.writes.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::yield();  // Read-mostly mix.
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop.store(true);
    for (auto& t : threads) {
        t.join();
    }
    std::printf("%-18s reads: %10llu   writes: %9llu   entries: %zu\n", name,
                static_cast<unsigned long long>(counters.reads.load()),
                static_cast<unsigned long long>(counters.writes.load()),
                store.size());
}

struct AfApi {
    rwr::native::AfLock* impl;
    void lock_shared(int r) { impl->lock_shared(static_cast<std::uint32_t>(r)); }
    void unlock_shared(int r) {
        impl->unlock_shared(static_cast<std::uint32_t>(r));
    }
    void lock(int w) { impl->lock(static_cast<std::uint32_t>(w)); }
    void unlock(int w) { impl->unlock(static_cast<std::uint32_t>(w)); }
};

struct CentralApi {
    rwr::native::CentralizedRWLock* impl;
    void lock_shared(int) { impl->lock_shared(); }
    void unlock_shared(int) { impl->unlock_shared(); }
    void lock(int) { impl->lock(); }
    void unlock(int) { impl->unlock(); }
};

struct FaaApi {
    rwr::native::FaaRWLock* impl;
    void lock_shared(int) { impl->lock_shared(); }
    void unlock_shared(int) { impl->unlock_shared(); }
    void lock(int w) { impl->lock(static_cast<std::uint32_t>(w)); }
    void unlock(int w) { impl->unlock(static_cast<std::uint32_t>(w)); }
};

struct StdApi {
    std::shared_mutex* impl;
    void lock_shared(int) { impl->lock_shared(); }
    void unlock_shared(int) { impl->unlock_shared(); }
    void lock(int) { impl->lock(); }
    void unlock(int) { impl->unlock(); }
};

}  // namespace

int main(int argc, char** argv) {
    const double seconds = argc > 1 ? std::atof(argv[1]) : 0.5;
    std::printf("kv_store: %d readers + %d writer, read-mostly, %.1fs per "
                "lock\n\n",
                kReaders, kWriters, seconds);

    rwr::native::AfLock af_balanced(kReaders, kWriters, 2);
    drive("A_f (f=2)", AfApi{&af_balanced}, seconds);

    rwr::native::AfLock af_reader_opt(kReaders, kWriters, kReaders);
    drive("A_f (f=n)", AfApi{&af_reader_opt}, seconds);

    rwr::native::CentralizedRWLock central;
    drive("centralized", CentralApi{&central}, seconds);

    rwr::native::FaaRWLock faa(kWriters);
    drive("faa", FaaApi{&faa}, seconds);

    std::shared_mutex std_mutex;
    drive("std::shared_mutex", StdApi{&std_mutex}, seconds);
    return 0;
}
