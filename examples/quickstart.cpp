// Quickstart: protect shared data with the RMR-optimal A_f reader-writer
// lock through the std::shared_mutex-style facade.
//
//   $ ./examples/quickstart
//
// AfSharedMutex composes with std::shared_lock / std::unique_lock; pick f
// to trade writer cost (Θ(f)) against reader cost (Θ(log(n/f))) -- the
// facade defaults to the balanced f = ceil(sqrt(max_readers)).
#include <cstdio>
#include <map>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "native/shared_mutex.hpp"

int main() {
    // Up to 8 concurrent reader threads and 2 writer threads.
    rwr::native::AfSharedMutex mutex(/*max_readers=*/8, /*max_writers=*/2);
    std::map<std::string, int> table;  // Protected by `mutex`.

    std::vector<std::thread> threads;

    // Writers: each inserts 100 keys.
    for (int w = 0; w < 2; ++w) {
        threads.emplace_back([&, w] {
            for (int i = 0; i < 100; ++i) {
                std::unique_lock lock(mutex);
                table["writer" + std::to_string(w) + "-" +
                      std::to_string(i)] = i;
            }
        });
    }

    // Readers: repeatedly scan the table; many can hold the lock at once.
    std::vector<std::size_t> observed(4, 0);
    for (int r = 0; r < 4; ++r) {
        threads.emplace_back([&, r] {
            for (int i = 0; i < 200; ++i) {
                std::shared_lock lock(mutex);
                observed[r] = table.size();
            }
        });
    }

    for (auto& t : threads) {
        t.join();
    }

    std::printf("final table size: %zu (expected 200)\n", table.size());
    for (int r = 0; r < 4; ++r) {
        std::printf("reader %d last observed %zu entries\n", r, observed[r]);
    }
    std::printf(
        "lock parameters: f=%u, group size K=%u -> writer RMRs Θ(f), "
        "reader RMRs Θ(log K)\n",
        mutex.underlying().f(), mutex.underlying().group_size());
    return table.size() == 200 ? 0 : 1;
}
