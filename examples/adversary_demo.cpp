// Example: the lower bound, narrated.
//
//   $ ./examples/adversary_demo [n]
//
// Runs Theorem 5's adversarial construction (Figure 1: E = E1 E2 E3)
// against A_f (f=1) and against the centralized one-word lock, printing the
// per-iteration story of E2: how many readers are still exiting, how large
// the knowledge sets have grown (the 3^j invariant), and -- at the end --
// how many RMRs the adversary extracted from a single reader's exit
// section versus the writer's entry section.
#include <cstdio>
#include <cstdlib>

#include "adversary/adversary.hpp"

namespace {

using namespace rwr;

void narrate(harness::LockKind kind, const char* label, std::uint32_t n) {
    adversary::AdversaryConfig cfg;
    cfg.lock = kind;
    cfg.n = n;
    cfg.f = 1;
    const auto res = adversary::run_adversary(cfg);

    std::printf("=== %s, n = %u readers, single writer ===\n", label, n);
    if (!res.completed) {
        std::printf("construction did not complete: %s\n\n",
                    res.note.c_str());
        return;
    }
    std::printf(
        "E1: all %u readers entered the CS solo (Concurrent Entering).\n"
        "E2: readers exit; the adversary pauses each reader right before "
        "every awareness-expanding step\n    and releases the poised steps "
        "in Lemma 2's phase order (reads, then CAS grouped by variable):\n",
        n);
    double cap = 1;
    for (std::size_t j = 0; j < res.iterations.size(); ++j) {
        const auto& it = res.iterations[j];
        cap *= 3;
        std::printf(
            "    iteration %2zu: released %4u expanding steps, %4u readers "
            "still exiting, max knowledge %4zu (3^j cap %.0f)\n",
            j + 1, it.batch_size, it.readers_left, it.max_knowledge, cap);
        if (j > 6 && res.iterations.size() > 12 &&
            j < res.iterations.size() - 3) {
            std::printf("    ... (%zu more iterations) ...\n",
                        res.iterations.size() - j - 3);
            // Skip the middle for long traces.
            while (j < res.iterations.size() - 4) {
                cap *= 3;
                ++j;
            }
        }
    }
    std::printf(
        "E3: writer entered the CS solo from the quiescent configuration.\n"
        "\nresults:\n"
        "    iterations r                  = %llu   (Theorem 5: r >= "
        "log3(n/f) = %.1f)\n"
        "    worst reader exit RMRs        = %llu   (survivor's expanding "
        "steps: %llu, each an RMR by Lemma 1)\n"
        "    writer entry RMRs             = %llu   (the 'f(n)' of the "
        "tradeoff)\n"
        "    writer aware of all readers?  = %s   (Lemma 4)\n"
        "    Lemma 1 violations            = %llu   (must be 0)\n\n",
        static_cast<unsigned long long>(res.r), res.log3_bound,
        static_cast<unsigned long long>(res.max_reader_exit_rmrs),
        static_cast<unsigned long long>(res.survivor_expanding_steps),
        static_cast<unsigned long long>(res.writer_entry_rmrs),
        res.lemma4_holds ? "yes" : "NO",
        static_cast<unsigned long long>(res.lemma1_violations));
}

}  // namespace

int main(int argc, char** argv) {
    const auto n = static_cast<std::uint32_t>(
        argc > 1 ? std::atoi(argv[1]) : 64);
    std::printf("adversary_demo: Theorem 5's execution E = E1 E2 E3, "
                "constructed live\n\n");
    narrate(harness::LockKind::Af, "A_f (f=1) -- meets the bound with "
                                   "Theta(log n) reader exits",
            n);
    narrate(harness::LockKind::Centralized,
            "centralized CAS lock -- pays Theta(n) reader exits for its "
            "O(1) writer",
            n);
    return 0;
}
