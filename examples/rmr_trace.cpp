// Example: watch the model work -- an annotated step trace of A_f on the
// simulated cache-coherent machine.
//
//   $ ./examples/rmr_trace
//
// Runs 2 readers + 1 writer (n=2, m=1, f=1) under a fixed schedule and
// prints every shared-memory step: which process, which operation, which
// variable, whether it cost an RMR (paper Section 2's protocol rules), and
// whether it was an *expanding* step (Definition 3) -- a step that grew the
// executing process's awareness set. Lemma 1 (expanding => RMR) can be
// checked line by line in the output.
#include <cstdio>
#include <string>

#include "core/af_lock_sim.hpp"
#include "knowledge/awareness.hpp"
#include "sim/rwlock.hpp"
#include "sim/scheduler.hpp"
#include "sim/system.hpp"

namespace {

using namespace rwr;

class Tracer final : public sim::StepObserver {
   public:
    explicit Tracer(knowledge::AwarenessTracker* tracker)
        : tracker_(tracker) {}

    void on_step(const sim::System& sys, const sim::Process& p, const Op& op,
                 const OpResult& res) override {
        ++step_;
        if (!op.touches_memory()) {
            std::printf("%4d  %s%u  %-9s  (local step, in %s)\n", step_,
                        p.is_reader() ? "R" : "W", p.role_index(), "local",
                        to_string(p.section()).c_str());
            return;
        }
        const bool expanding = tracker_->would_expand(p.id(), op);
        std::printf(
            "%4d  %s%u  %-9s  %-12s -> %-6llu %s %s %s  (aw=%zu, in %s)\n",
            step_, p.is_reader() ? "R" : "W", p.role_index(),
            to_string(op.code), sys.memory().name(op.var).c_str(),
            static_cast<unsigned long long>(res.value),
            res.rmr ? "[RMR]" : "     ",
            res.nontrivial ? "[writes]" : "        ",
            expanding ? "[EXPANDING]" : "",
            tracker_->awareness(p.id()).count(),
            to_string(p.section()).c_str());
    }

   private:
    knowledge::AwarenessTracker* tracker_;
    int step_ = 0;
};

}  // namespace

int main() {
    sim::System sys(Protocol::WriteBack);
    core::AfParams params{.n = 2, .m = 1, .f = 1};
    core::AfSimLock lock(sys.memory(), params);

    knowledge::AwarenessTracker tracker(3, sys.memory().num_variables());
    Tracer tracer(&tracker);
    // Order matters: the tracer reads awareness BEFORE the tracker updates.
    sys.add_observer(&tracer);
    sys.add_observer(&tracker);

    sim::Process& r0 = sys.add_process(sim::Role::Reader);
    sim::Process& r1 = sys.add_process(sim::Role::Reader);
    sim::Process& w = sys.add_process(sim::Role::Writer);
    sim::DriveConfig dc;
    dc.passages = 1;
    r0.set_task(sim::drive_passages(lock, r0, dc));
    r1.set_task(sim::drive_passages(lock, r1, dc));
    w.set_task(sim::drive_passages(lock, w, dc));
    sys.start_all();

    std::printf("A_f with n=2 readers, m=1 writer, f=1 (K=2), write-back "
                "protocol\n");
    std::printf("legend: [RMR] remote memory reference; [EXPANDING] "
                "awareness-growing step (Lemma 1: every such step is an "
                "RMR); aw=|awareness set|\n\n");

    std::printf("--- phase 1: both readers enter and leave the CS ---\n");
    sim::run_solo(sys, r0.id(), 1000,
                  [](const sim::Process& p) { return p.in_cs(); });
    sim::run_solo(sys, r1.id(), 1000,
                  [](const sim::Process& p) { return p.in_cs(); });
    sim::run_solo(sys, r0.id(), 1000);
    sim::run_solo(sys, r1.id(), 1000);

    std::printf("\n--- phase 2: the writer's entry section (it must become "
                "aware of both readers: Lemma 4) ---\n");
    sim::run_solo(sys, w.id(), 1000,
                  [](const sim::Process& p) { return p.in_cs(); });
    std::printf("\nwriter awareness after entry: {");
    for (ProcId id = 0; id < 3; ++id) {
        if (tracker.awareness(w.id()).test(id)) {
            std::printf(" %s%u", id < 2 ? "R" : "W", id < 2 ? id : id - 2);
        }
    }
    std::printf(" }  (must contain R0 and R1)\n");

    std::printf("\n--- phase 3: writer CS + exit ---\n");
    sim::run_solo(sys, w.id(), 1000);

    std::printf("\ntotals: steps=%llu, RMRs=%llu, lemma-1 violations=%llu\n",
                static_cast<unsigned long long>(sys.memory().total_steps()),
                static_cast<unsigned long long>(sys.memory().total_rmrs()),
                static_cast<unsigned long long>(tracker.lemma1_violations()));
    return tracker.lemma1_violations() == 0 ? 0 : 1;
}
