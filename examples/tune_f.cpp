// Example: choosing your point on the paper's tradeoff.
//
//   $ ./examples/tune_f [n] [writer_share_percent]
//
// The A_f family gives you a dial: writers pay Θ(f), readers pay
// Θ(log(n/f)). Which f minimizes total RMR cost depends on your workload's
// read/write mix. This example sweeps f on the RMR-exact simulator for
// your n and mix, prints the cost model, recommends an f, and constructs
// the native lock with it.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/af_params.hpp"
#include "harness/experiment.hpp"
#include "native/af_lock.hpp"

namespace {

using namespace rwr;
using namespace rwr::harness;

struct SweepPoint {
    std::uint32_t f;
    double reader_rmrs;
    double writer_rmrs;
    double weighted;  ///< Per-passage cost weighted by the workload mix.
};

}  // namespace

int main(int argc, char** argv) {
    const auto n =
        static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 64);
    const double writer_share =
        (argc > 2 ? std::atof(argv[2]) : 10.0) / 100.0;

    std::printf("tune_f: n=%u readers, writer share of passages = %.0f%%\n\n",
                n, writer_share * 100);
    std::printf("%8s %10s %10s %14s\n", "f", "reader", "writer",
                "weighted RMRs");

    std::vector<SweepPoint> points;
    for (std::uint32_t f = 1; f <= n; f *= 2) {
        ExperimentConfig cfg;
        cfg.lock = LockKind::Af;
        cfg.n = n;
        cfg.m = 1;
        cfg.f = f;
        cfg.passages = 2;
        cfg.sched = SchedKind::RoundRobin;
        cfg.check_mutual_exclusion = false;
        const auto res = run_experiment(cfg);
        if (!res.finished) {
            continue;
        }
        SweepPoint pt;
        pt.f = f;
        pt.reader_rmrs = res.readers.mean_passage_rmrs;
        pt.writer_rmrs = res.writers.mean_passage_rmrs;
        pt.weighted = (1.0 - writer_share) * pt.reader_rmrs +
                      writer_share * pt.writer_rmrs;
        points.push_back(pt);
        std::printf("%8u %10.1f %10.1f %14.1f\n", pt.f, pt.reader_rmrs,
                    pt.writer_rmrs, pt.weighted);
    }
    if (points.empty()) {
        std::fprintf(stderr, "sweep failed\n");
        return 1;
    }

    const auto* best = &points.front();
    for (const auto& pt : points) {
        if (pt.weighted < best->weighted) {
            best = &pt;
        }
    }
    std::printf(
        "\nrecommended f = %u  (K = %u readers per group; expected ~%.1f "
        "RMRs per weighted passage)\n",
        best->f, (n + best->f - 1) / best->f, best->weighted);

    // Deploy: the native lock at the chosen tradeoff point.
    rwr::native::AfLock lock(n, /*m=*/1, best->f);
    lock.lock_shared(0);
    lock.unlock_shared(0);
    lock.lock(0);
    lock.unlock(0);
    std::printf("native AfLock(n=%u, m=1, f=%u) constructed and exercised.\n",
                n, best->f);
    return 0;
}
